#ifndef SSJOIN_FUZZ_ORACLES_H_
#define SSJOIN_FUZZ_ORACLES_H_

#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/sets.h"
#include "core/ssjoin.h"
#include "simjoin/prep.h"
#include "simjoin/types.h"

namespace ssjoin::fuzz {

/// \brief Naive cross-product SSJoin oracle: for every (r, s) group pair,
/// merge-intersects the canonical sets, sums the weighted overlap in sorted
/// element order (the same accumulation order every executor uses, so
/// overlaps compare bit-identically), and emits the pair iff the
/// intersection is non-empty and the predicate holds — Definition 1 plus the
/// operator's standing positive-threshold contract, evaluated with no index,
/// no filter and no pruning.
std::vector<core::SSJoinPair> SSJoinOracle(const core::SetsRelation& r,
                                           const core::SetsRelation& s,
                                           const core::WeightVector& weights,
                                           const core::OverlapPredicate& pred);

/// \brief Cross-product Jaccard-containment oracle over prepared sets:
/// every pair with non-empty intersection whose containment passes the
/// SSJoin predicate (the reduction is exact, so this mirrors
/// JaccardContainmentJoin including its tolerance).
std::vector<simjoin::MatchPair> CrossProductJaccardContainment(
    const simjoin::Prepared& prep, double alpha);

/// \brief Cross-product Jaccard-resemblance oracle (mirrors
/// JaccardResemblanceJoin: 2-sided predicate plus the exact JR filter).
std::vector<simjoin::MatchPair> CrossProductJaccardResemblance(
    const simjoin::Prepared& prep, double alpha);

/// \brief Cross-product cosine oracle (mirrors CosineJoin: alpha^2 2-sided
/// predicate plus the exact cosine filter; expects kIdfSquared weights).
std::vector<simjoin::MatchPair> CrossProductCosine(const simjoin::Prepared& prep,
                                                   double alpha);

/// \brief The Property 4 q-gram count bound
/// `max(|s1|,|s2|) - q + 1 - q * budget`, or a negative value when it is
/// non-positive. Pruning on a shared q-gram is sound only when this is >= 1.
long long QGramCountBound(size_t len_r, size_t len_s, size_t q, size_t budget);

/// \brief Restriction of a cross-product edit-join result to pairs where the
/// Property 4 bound is >= 1 — the regime in which the SSJoin q-gram
/// reduction guarantees recall (the documented caveat of EditDistanceJoin /
/// EditSimilarityJoin). `budget_of(len_r, len_s)` is the per-pair edit
/// budget.
template <typename BudgetFn>
std::vector<simjoin::MatchPair> FilterToSoundBound(
    const std::vector<simjoin::MatchPair>& matches,
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    size_t q, const BudgetFn& budget_of) {
  std::vector<simjoin::MatchPair> out;
  for (const simjoin::MatchPair& m : matches) {
    size_t lr = r[m.r].size();
    size_t ls = s[m.s].size();
    if (QGramCountBound(lr, ls, q, budget_of(lr, ls)) >= 1) out.push_back(m);
  }
  return out;
}

}  // namespace ssjoin::fuzz

#endif  // SSJOIN_FUZZ_ORACLES_H_
