#include "fuzz/reproducer.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace ssjoin::fuzz {

namespace {

constexpr const char kHeader[] = "ssjoin-fuzz-repro v1";

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x", c);
      out += buf;
    }
  }
  out.push_back('"');
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Result<std::string> UnescapeString(const std::string& line) {
  if (line.size() < 2 || line.front() != '"' || line.back() != '"') {
    return Status::Invalid("reproducer: string line not quoted: " + line);
  }
  std::string out;
  for (size_t i = 1; i + 1 < line.size(); ++i) {
    char c = line[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= line.size()) {
      return Status::Invalid("reproducer: dangling escape in: " + line);
    }
    char e = line[++i];
    if (e == '"' || e == '\\') {
      out.push_back(e);
    } else if (e == 'x') {
      if (i + 3 >= line.size()) {
        return Status::Invalid("reproducer: truncated \\x escape in: " + line);
      }
      int hi = HexValue(line[i + 1]);
      int lo = HexValue(line[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::Invalid("reproducer: bad \\x escape in: " + line);
      }
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      return Status::Invalid("reproducer: unknown escape in: " + line);
    }
  }
  return out;
}

}  // namespace

Result<double> Reproducer::GetDouble(const std::string& key, double fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  Result<double> v = ParseDouble(it->second);
  if (!v.ok()) {
    return Status::Invalid("reproducer param '" + key +
                           "': " + v.status().message());
  }
  return *v;
}

Result<uint64_t> Reproducer::GetUint(const std::string& key, uint64_t fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  Result<uint64_t> v = ParseUint64(it->second);
  if (!v.ok()) {
    return Status::Invalid("reproducer param '" + key +
                           "': " + v.status().message());
  }
  return *v;
}

Result<bool> Reproducer::GetBool(const std::string& key, bool fallback) const {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t v, GetUint(key, fallback ? 1 : 0));
  return v != 0;
}

void Reproducer::Set(const std::string& key, double value) {
  params[key] = StringPrintf("%.17g", value);
}

void Reproducer::Set(const std::string& key, uint64_t value) {
  params[key] = std::to_string(value);
}

void Reproducer::Set(const std::string& key, bool value) {
  params[key] = value ? "1" : "0";
}

std::string FormatReproducer(const Reproducer& repro) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "scenario: " << repro.scenario << "\n";
  for (const auto& [key, value] : repro.params) {
    out << "param " << key << " " << value << "\n";
  }
  out << "r " << repro.r.size() << "\n";
  for (const std::string& s : repro.r) out << EscapeString(s) << "\n";
  out << "s " << repro.s.size() << "\n";
  for (const std::string& s : repro.s) out << EscapeString(s) << "\n";
  return out.str();
}

Result<Reproducer> ParseReproducer(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::Invalid("reproducer: missing '" + std::string(kHeader) +
                           "' header");
  }
  Reproducer repro;
  if (!std::getline(in, line) || line.rfind("scenario: ", 0) != 0) {
    return Status::Invalid("reproducer: missing scenario line");
  }
  repro.scenario = line.substr(10);

  auto read_strings = [&](const char* tag,
                          std::vector<std::string>* out) -> Status {
    std::string expect = std::string(tag) + " ";
    if (line.rfind(expect, 0) != 0) {
      return Status::Invalid("reproducer: expected '" + std::string(tag) +
                             " <count>' line, got: " + line);
    }
    uint64_t count = 0;
    SSJOIN_ASSIGN_OR_RETURN(count,
                            ParseUint64(line.substr(expect.size())));
    for (size_t i = 0; i < count; ++i) {
      if (!std::getline(in, line)) {
        return Status::Invalid("reproducer: truncated string list");
      }
      std::string s;
      SSJOIN_ASSIGN_OR_RETURN(s, UnescapeString(line));
      out->push_back(std::move(s));
    }
    return Status::OK();
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("param ", 0) == 0) {
      size_t space = line.find(' ', 6);
      if (space == std::string::npos) {
        return Status::Invalid("reproducer: malformed param line: " + line);
      }
      repro.params[line.substr(6, space - 6)] = line.substr(space + 1);
    } else if (line.rfind("r ", 0) == 0) {
      SSJOIN_RETURN_NOT_OK(read_strings("r", &repro.r));
    } else if (line.rfind("s ", 0) == 0) {
      SSJOIN_RETURN_NOT_OK(read_strings("s", &repro.s));
      return repro;
    } else {
      return Status::Invalid("reproducer: unexpected line: " + line);
    }
  }
  return Status::Invalid("reproducer: missing 's <count>' section");
}

Result<Reproducer> LoadReproducerFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open reproducer file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseReproducer(buf.str());
}

Status SaveReproducerFile(const Reproducer& repro, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot write reproducer file: " + path);
  out << FormatReproducer(repro);
  out.flush();
  if (!out) return Status::IOError("write failed for reproducer file: " + path);
  return Status::OK();
}

}  // namespace ssjoin::fuzz
