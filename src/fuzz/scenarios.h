#ifndef SSJOIN_FUZZ_SCENARIOS_H_
#define SSJOIN_FUZZ_SCENARIOS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fuzz/reproducer.h"

namespace ssjoin::fuzz {

/// Outcome of replaying one differential check.
struct CheckResult {
  bool pass = true;
  /// First divergence, human-readable; empty when pass.
  std::string detail;
};

/// \brief The differential scenarios the harness drives. Each scenario
/// derives its entire workload deterministically from a Reproducer:
///
///  - `ssjoin_executors`      all 5 serial + all 5 parallel SSJoin executors
///                            vs the naive cross-product SSJoin oracle, over
///                            weighted multisets and predicates in all three
///                            overlap-norm forms.
///  - `edit_distance_joins`   EditDistanceJoin (SSJoin reduction) and
///                            GravanoEditDistanceJoin vs a cross-product
///                            banded-edit-distance oracle. Gravano must match
///                            exactly; the SSJoin reduction must be
///                            precision-exact everywhere and recall-exact
///                            wherever the Property 4 bound is >= 1 (its
///                            documented caveat regime).
///  - `edit_similarity_joins` same for EditSimilarityJoin /
///                            GravanoEditSimilarityJoin vs
///                            CrossProductEditSimilarityJoin.
///  - `jaccard_joins`         JaccardContainmentJoin, JaccardResemblanceJoin
///                            and CosineJoin vs cross-product oracles, exact.
///  - `ges_join`              GESJoin vs GESJoinBruteForce: every emitted
///                            pair must appear in the brute-force result with
///                            an identical similarity (precision is exact by
///                            construction; recall is empirical by design).
///  - `snapshot_roundtrip`    FuzzyMatchIndex save -> load -> Lookup at both
///                            snapshot format versions, bit-identical to the
///                            freshly built index.
///  - `lookup_service`        LookupService (cache on and off, batched,
///                            threaded) vs direct FuzzyMatchIndex::Lookup,
///                            bit-identical, including repeat queries served
///                            from the cache.
///  - `filtered_lookup`       MutableFuzzyIndex filtered lookups (BE-index
///                            composed with similarity candidates) under
///                            upsert/delete/seal/compact/reopen churn vs the
///                            exact post-filter oracle: the unfiltered
///                            lookup with unbounded k, records failing
///                            FilterPredicate::Matches dropped, truncated to
///                            k — bitwise identical, with the empty filter
///                            byte-identical to the unfiltered overload.
///  - `wire_parser`           serve::ParseJsonObject over generated request
///                            lines: every well-formed line round-trips its
///                            fields byte-exactly, every strict prefix is
///                            rejected (truncation can never be silently
///                            accepted), and random byte-level mutations and
///                            raw adversarial lines parse deterministically
///                            without crashing.
///  - `kernel_diff`           every available kernel tier (gallop, simd,
///                            auto) vs the pinned scalar oracle across all
///                            kernel entry points, over adversarial span
///                            pairs: empty, length-1, all-equal runs,
///                            disjoint ranges, values straddling 2^16,
///                            SIMD-block-boundary lengths, and duplicate-
///                            token multisets. Counts, weighted overlaps
///                            (bitwise), matched-token sequences and probe
///                            orders must all be identical.
///  - `recall`                the approximate tier (kApprox, serial and
///                            parallel, plus kHybrid routing) vs the exact
///                            SSJoin oracle: output must be a subset with
///                            exact overlaps (precision 1.0), bitwise
///                            identical across thread counts, with recall at
///                            or above the drawn target_recall.
std::vector<std::string> AllScenarios();

/// Draws a random case for `scenario` from `seed`. Deterministic: equal
/// (scenario, seed) produce equal reproducers on every platform.
Reproducer GenerateCase(const std::string& scenario, uint64_t seed);

/// Replays the differential check a reproducer encodes. Unknown scenarios
/// and malformed parameters yield an error status (distinct from a failing
/// check, which yields pass=false).
Result<CheckResult> CheckCase(const Reproducer& repro);

/// Options for the fuzz loop.
struct FuzzOptions {
  uint64_t seeds = 100;
  uint64_t start_seed = 0;
  /// One scenario name, or "all".
  std::string scenario = "all";
  /// Directory reproducer files are written to; empty disables writing.
  std::string out_dir = ".";
  bool shrink = true;
  size_t max_shrink_checks = 4000;
  /// Stop after this many distinct failures (still counts the rest of the
  /// seed range as not-run).
  size_t max_failures = 5;
  bool verbose = false;
};

/// Aggregate outcome of a fuzz run.
struct FuzzReport {
  uint64_t cases_run = 0;
  uint64_t failures = 0;
  std::vector<std::string> reproducer_paths;
  std::string first_failure_detail;
};

/// \brief The differential fuzz loop: for each seed in
/// [start_seed, start_seed + seeds) and each selected scenario, generates a
/// case and replays its check; on failure, shrinks the workload with greedy
/// delta-debugging and writes a self-contained reproducer file
/// `<scenario>-seed<seed>.repro` into `out_dir`.
Result<FuzzReport> RunFuzz(const FuzzOptions& options);

}  // namespace ssjoin::fuzz

#endif  // SSJOIN_FUZZ_SCENARIOS_H_
