#include "fuzz/scenarios.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>

#include "approx/approx_ssjoin.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/predicate.h"
#include "core/ssjoin.h"
#include "exec/parallel_ssjoin.h"
#include "fuzz/oracles.h"
#include "fuzz/shrink.h"
#include "fuzz/workload.h"
#include "filter/attr.h"
#include "filter/predicate.h"
#include "index/mutable_index.h"
#include "shard/sharded_index.h"
#include "kernels/kernels.h"
#include "serve/lookup_service.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "sim/edit_distance.h"
#include "simjoin/fuzzy_match.h"
#include "simjoin/ges_join.h"
#include "simjoin/gravano.h"
#include "simjoin/prep.h"
#include "simjoin/string_joins.h"
#include "text/tokenizer.h"

namespace ssjoin::fuzz {

namespace {

using simjoin::MatchPair;
using simjoin::Prepared;
using simjoin::WeightMode;

constexpr double kOverlapTol = 1e-9;

constexpr core::SSJoinAlgorithm kAllAlgorithms[] = {
    core::SSJoinAlgorithm::kNaive,
    core::SSJoinAlgorithm::kBasic,
    core::SSJoinAlgorithm::kInvertedIndex,
    core::SSJoinAlgorithm::kPrefixFilter,
    core::SSJoinAlgorithm::kPrefixFilterInline,
};

std::string PairStr(uint32_t r, uint32_t s, double sim) {
  return StringPrintf("(%u, %u, sim=%.17g)", r, s, sim);
}

/// Exact pair-set comparison of two sorted match lists; similarities must
/// agree within `tol` (0 = bitwise).
bool SameMatches(const std::string& name, std::vector<MatchPair> got,
                 std::vector<MatchPair> want, double tol, std::string* detail) {
  simjoin::SortMatches(&got);
  simjoin::SortMatches(&want);
  size_t i = 0;
  size_t j = 0;
  while (i < got.size() || j < want.size()) {
    bool take_got = j == want.size() ||
                    (i < got.size() && (got[i].r < want[j].r ||
                                        (got[i].r == want[j].r &&
                                         got[i].s < want[j].s)));
    bool take_want = i == got.size() ||
                     (j < want.size() && (want[j].r < got[i].r ||
                                          (want[j].r == got[i].r &&
                                           want[j].s < got[i].s)));
    if (take_got) {
      *detail = name + ": extra pair " + PairStr(got[i].r, got[i].s,
                                                 got[i].similarity);
      return false;
    }
    if (take_want) {
      *detail = name + ": missing pair " + PairStr(want[j].r, want[j].s,
                                                   want[j].similarity);
      return false;
    }
    double diff = std::abs(got[i].similarity - want[j].similarity);
    if (diff > tol) {
      *detail = name + ": similarity mismatch at " +
                PairStr(got[i].r, got[i].s, got[i].similarity) + " vs oracle " +
                PairStr(want[j].r, want[j].s, want[j].similarity);
      return false;
    }
    ++i;
    ++j;
  }
  return true;
}

/// Every pair of `sub` must appear in `super` with a similarity within `tol`.
bool SubsetOf(const std::string& name, std::vector<MatchPair> sub,
              std::vector<MatchPair> super, double tol, std::string* detail) {
  simjoin::SortMatches(&sub);
  simjoin::SortMatches(&super);
  size_t j = 0;
  for (const MatchPair& m : sub) {
    while (j < super.size() &&
           (super[j].r < m.r || (super[j].r == m.r && super[j].s < m.s))) {
      ++j;
    }
    if (j == super.size() || !(super[j] == m)) {
      *detail = name + ": pair " + PairStr(m.r, m.s, m.similarity) +
                " not in oracle result";
      return false;
    }
    if (std::abs(super[j].similarity - m.similarity) > tol) {
      *detail = name + ": similarity mismatch at " +
                PairStr(m.r, m.s, m.similarity) + " vs oracle " +
                PairStr(super[j].r, super[j].s, super[j].similarity);
      return false;
    }
  }
  return true;
}

std::vector<MatchPair> ToMatches(const std::vector<core::SSJoinPair>& pairs) {
  std::vector<MatchPair> out;
  out.reserve(pairs.size());
  for (const core::SSJoinPair& p : pairs) out.push_back({p.r, p.s, p.overlap});
  return out;
}

std::unique_ptr<text::Tokenizer> MakeTokenizer(bool word_tokens, size_t q) {
  if (word_tokens) return std::make_unique<text::WordTokenizer>();
  return std::make_unique<text::QGramTokenizer>(q);
}

Result<simjoin::JoinExecution> MakeExecution(const Reproducer& rp) {
  simjoin::JoinExecution exec;
  SSJOIN_ASSIGN_OR_RETURN(uint64_t algorithm, rp.GetUint("algorithm", 4));
  exec.algorithm = kAllAlgorithms[algorithm % std::size(kAllAlgorithms)];
  SSJOIN_ASSIGN_OR_RETURN(uint64_t threads, rp.GetUint("threads", 1));
  exec.exec.num_threads = threads;
  SSJOIN_ASSIGN_OR_RETURN(uint64_t morsel, rp.GetUint("morsel", 2048));
  exec.exec.morsel_size = std::max<uint64_t>(1, morsel);
  return exec;
}

/// Per-pair edit budget under edit-similarity threshold alpha (the same
/// floor the joins use).
size_t EditSimBudget(double alpha, size_t len_r, size_t len_s) {
  double allowed = (1.0 - alpha) * static_cast<double>(std::max(len_r, len_s));
  return static_cast<size_t>(std::floor(allowed + 1e-9));
}

/// Shared predicate construction for the SSJoin-shaped scenarios.
Result<core::OverlapPredicate> MakePredicate(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t pred_kind, rp.GetUint("pred_kind", 2));
  switch (pred_kind % 3) {
    case 0: {
      SSJOIN_ASSIGN_OR_RETURN(double threshold, rp.GetDouble("threshold", 1.0));
      return core::OverlapPredicate::Absolute(threshold);
    }
    case 1: {
      SSJOIN_ASSIGN_OR_RETURN(double alpha, rp.GetDouble("alpha", 0.5));
      return core::OverlapPredicate::OneSidedNormalized(alpha);
    }
    default: {
      SSJOIN_ASSIGN_OR_RETURN(double alpha, rp.GetDouble("alpha", 0.5));
      return core::OverlapPredicate::TwoSidedNormalized(alpha);
    }
  }
}

// ---------------------------------------------------------------------------
// Scenario checks
// ---------------------------------------------------------------------------

Result<CheckResult> CheckSSJoinExecutors(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t q_raw, rp.GetUint("q", 3));
  size_t q = std::max<uint64_t>(1, q_raw);
  SSJOIN_ASSIGN_OR_RETURN(uint64_t weight_mode, rp.GetUint("weight_mode", 1));
  auto mode = static_cast<WeightMode>(weight_mode % 3);
  SSJOIN_ASSIGN_OR_RETURN(bool word_tokens, rp.GetBool("word_tokens", true));
  std::unique_ptr<text::Tokenizer> tok = MakeTokenizer(word_tokens, q);
  SSJOIN_ASSIGN_OR_RETURN(Prepared prep,
                          PrepareStrings(rp.r, rp.s, *tok, mode));

  SSJOIN_ASSIGN_OR_RETURN(core::OverlapPredicate pred, MakePredicate(rp));

  std::vector<core::SSJoinPair> oracle =
      SSJoinOracle(prep.r, prep.s, prep.weights, pred);
  core::SortPairs(&oracle);
  std::vector<MatchPair> oracle_matches = ToMatches(oracle);

  exec::ExecContext parallel_ctx;
  SSJOIN_ASSIGN_OR_RETURN(uint64_t threads, rp.GetUint("threads", 2));
  parallel_ctx.num_threads = std::max<uint64_t>(2, threads);
  SSJOIN_ASSIGN_OR_RETURN(uint64_t morsel, rp.GetUint("morsel", 2));
  parallel_ctx.morsel_size = std::max<uint64_t>(1, morsel);

  CheckResult result;
  for (core::SSJoinAlgorithm algorithm : kAllAlgorithms) {
    for (bool parallel : {false, true}) {
      core::SSJoinContext ctx = prep.Context();
      if (parallel) ctx.exec = &parallel_ctx;
      Result<std::vector<core::SSJoinPair>> got =
          exec::ExecuteSSJoin(algorithm, prep.r, prep.s, pred, ctx, nullptr);
      std::string name = std::string(core::SSJoinAlgorithmName(algorithm)) +
                         (parallel ? " (parallel)" : " (serial)");
      if (!got.ok()) {
        result.pass = false;
        result.detail = name + " failed: " + got.status().ToString();
        return result;
      }
      core::SortPairs(&got.ValueOrDie());
      if (!SameMatches(name, ToMatches(*got), oracle_matches, kOverlapTol,
                       &result.detail)) {
        result.pass = false;
        return result;
      }
    }
  }
  return result;
}

Result<CheckResult> CheckEditDistanceJoins(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t q_raw, rp.GetUint("q", 3));
  size_t q = std::max<uint64_t>(1, q_raw);
  SSJOIN_ASSIGN_OR_RETURN(uint64_t d_raw, rp.GetUint("max_distance", 1));
  size_t d = d_raw;

  std::vector<MatchPair> oracle;
  for (uint32_t i = 0; i < rp.r.size(); ++i) {
    for (uint32_t j = 0; j < rp.s.size(); ++j) {
      size_t ed = sim::EditDistanceBounded(rp.r[i], rp.s[j], d);
      if (ed <= d) oracle.push_back({i, j, -static_cast<double>(ed)});
    }
  }

  CheckResult result;
  Result<std::vector<MatchPair>> gravano =
      simjoin::GravanoEditDistanceJoin(rp.r, rp.s, d, q);
  if (!gravano.ok()) {
    return CheckResult{false, "GravanoEditDistanceJoin failed: " +
                                  gravano.status().ToString()};
  }
  if (!SameMatches("GravanoEditDistanceJoin", *gravano, oracle, 0.0,
                   &result.detail)) {
    result.pass = false;
    return result;
  }

  SSJOIN_ASSIGN_OR_RETURN(simjoin::JoinExecution exec, MakeExecution(rp));
  Result<std::vector<MatchPair>> ssjoin =
      simjoin::EditDistanceJoin(rp.r, rp.s, d, q, exec);
  if (!ssjoin.ok()) {
    return CheckResult{false,
                       "EditDistanceJoin failed: " + ssjoin.status().ToString()};
  }
  if (!SubsetOf("EditDistanceJoin (precision)", *ssjoin, oracle, 0.0,
                &result.detail)) {
    result.pass = false;
    return result;
  }
  std::vector<MatchPair> sound = FilterToSoundBound(
      oracle, rp.r, rp.s, q, [d](size_t, size_t) { return d; });
  if (!SubsetOf("EditDistanceJoin (recall, sound-bound regime)", sound, *ssjoin,
                0.0, &result.detail)) {
    result.pass = false;
    return result;
  }
  return result;
}

Result<CheckResult> CheckEditSimilarityJoins(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t q_raw, rp.GetUint("q", 3));
  size_t q = std::max<uint64_t>(1, q_raw);
  SSJOIN_ASSIGN_OR_RETURN(double alpha, rp.GetDouble("alpha", 0.8));

  Result<std::vector<MatchPair>> oracle =
      simjoin::CrossProductEditSimilarityJoin(rp.r, rp.s, alpha);
  if (!oracle.ok()) return oracle.status();

  CheckResult result;
  Result<std::vector<MatchPair>> gravano =
      simjoin::GravanoEditSimilarityJoin(rp.r, rp.s, alpha, q);
  if (!gravano.ok()) {
    return CheckResult{false, "GravanoEditSimilarityJoin failed: " +
                                  gravano.status().ToString()};
  }
  if (!SameMatches("GravanoEditSimilarityJoin", *gravano, *oracle, 0.0,
                   &result.detail)) {
    result.pass = false;
    return result;
  }

  SSJOIN_ASSIGN_OR_RETURN(simjoin::JoinExecution exec, MakeExecution(rp));
  Result<std::vector<MatchPair>> ssjoin =
      simjoin::EditSimilarityJoin(rp.r, rp.s, alpha, q, exec);
  if (!ssjoin.ok()) {
    return CheckResult{
        false, "EditSimilarityJoin failed: " + ssjoin.status().ToString()};
  }
  if (!SubsetOf("EditSimilarityJoin (precision)", *ssjoin, *oracle, 0.0,
                &result.detail)) {
    result.pass = false;
    return result;
  }
  std::vector<MatchPair> sound =
      FilterToSoundBound(*oracle, rp.r, rp.s, q, [alpha](size_t lr, size_t ls) {
        return EditSimBudget(alpha, lr, ls);
      });
  if (!SubsetOf("EditSimilarityJoin (recall, sound-bound regime)", sound,
                *ssjoin, 0.0, &result.detail)) {
    result.pass = false;
    return result;
  }
  return result;
}

Result<CheckResult> CheckJaccardJoins(const Reproducer& rp) {
  simjoin::SetJoinOptions opts;
  SSJOIN_ASSIGN_OR_RETURN(opts.word_tokens, rp.GetBool("word_tokens", true));
  SSJOIN_ASSIGN_OR_RETURN(uint64_t q_raw, rp.GetUint("q", 3));
  opts.q = std::max<uint64_t>(1, q_raw);
  SSJOIN_ASSIGN_OR_RETURN(uint64_t weight_mode, rp.GetUint("weight_mode", 1));
  opts.weights = static_cast<WeightMode>(weight_mode % 3);
  SSJOIN_ASSIGN_OR_RETURN(double alpha, rp.GetDouble("alpha", 0.5));
  SSJOIN_ASSIGN_OR_RETURN(simjoin::JoinExecution exec, MakeExecution(rp));

  std::unique_ptr<text::Tokenizer> tok = MakeTokenizer(opts.word_tokens, opts.q);
  SSJOIN_ASSIGN_OR_RETURN(Prepared prep,
                          PrepareStrings(rp.r, rp.s, *tok, opts.weights));
  SSJOIN_ASSIGN_OR_RETURN(
      Prepared prep_sq,
      PrepareStrings(rp.r, rp.s, *tok, WeightMode::kIdfSquared));

  CheckResult result;
  struct Case {
    const char* name;
    Result<std::vector<MatchPair>> got;
    std::vector<MatchPair> oracle;
  };
  Case cases[] = {
      {"JaccardContainmentJoin",
       simjoin::JaccardContainmentJoin(rp.r, rp.s, alpha, opts, exec),
       CrossProductJaccardContainment(prep, alpha)},
      {"JaccardResemblanceJoin",
       simjoin::JaccardResemblanceJoin(rp.r, rp.s, alpha, opts, exec),
       CrossProductJaccardResemblance(prep, alpha)},
      {"CosineJoin", simjoin::CosineJoin(rp.r, rp.s, alpha, opts, exec),
       CrossProductCosine(prep_sq, alpha)},
  };
  for (Case& c : cases) {
    if (!c.got.ok()) {
      return CheckResult{false, std::string(c.name) +
                                    " failed: " + c.got.status().ToString()};
    }
    if (!SameMatches(c.name, *c.got, c.oracle, kOverlapTol, &result.detail)) {
      result.pass = false;
      return result;
    }
  }
  return result;
}

Result<CheckResult> CheckGESJoin(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(double alpha, rp.GetDouble("alpha", 0.7));
  Result<std::vector<MatchPair>> ges = simjoin::GESJoin(rp.r, rp.s, alpha);
  if (!ges.ok()) {
    return CheckResult{false, "GESJoin failed: " + ges.status().ToString()};
  }
  Result<std::vector<MatchPair>> brute =
      simjoin::GESJoinBruteForce(rp.r, rp.s, alpha);
  if (!brute.ok()) return brute.status();
  CheckResult result;
  // GESJoin is precision-exact (candidates pass the exact GES UDF) but its
  // candidate generation is high-recall by design, not guaranteed-complete —
  // so the differential invariant is subset-with-equal-similarity.
  if (!SubsetOf("GESJoin (precision)", *ges, *brute, kOverlapTol,
                &result.detail)) {
    result.pass = false;
  }
  return result;
}

bool SameLookups(const std::string& name,
                 const std::vector<simjoin::FuzzyMatchIndex::Match>& got,
                 const std::vector<simjoin::FuzzyMatchIndex::Match>& want,
                 const std::string& query, std::string* detail) {
  if (got.size() != want.size()) {
    *detail = name + ": result count " + std::to_string(got.size()) + " vs " +
              std::to_string(want.size()) + " for query \"" + query + "\"";
    return false;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].ref_index != want[i].ref_index ||
        got[i].similarity != want[i].similarity) {
      *detail = name + ": match " + std::to_string(i) + " diverges (" +
                PairStr(got[i].ref_index, 0, got[i].similarity) + " vs " +
                PairStr(want[i].ref_index, 0, want[i].similarity) +
                ") for query \"" + query + "\"";
      return false;
    }
  }
  return true;
}

Result<simjoin::FuzzyMatchIndex::Options> IndexOptions(const Reproducer& rp) {
  simjoin::FuzzyMatchIndex::Options options;
  SSJOIN_ASSIGN_OR_RETURN(options.word_tokens, rp.GetBool("word_tokens", true));
  SSJOIN_ASSIGN_OR_RETURN(uint64_t q_raw, rp.GetUint("q", 3));
  options.q = std::max<uint64_t>(1, q_raw);
  SSJOIN_ASSIGN_OR_RETURN(options.alpha, rp.GetDouble("alpha", 0.5));
  return options;
}

Result<CheckResult> CheckSnapshotRoundtrip(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t k_raw, rp.GetUint("k", 3));
  size_t k = std::max<uint64_t>(1, k_raw);
  SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex::Options iopts,
                          IndexOptions(rp));
  SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex index,
                          simjoin::FuzzyMatchIndex::Build(rp.r, iopts));

  std::vector<std::vector<simjoin::FuzzyMatchIndex::Match>> direct;
  direct.reserve(rp.s.size());
  for (const std::string& query : rp.s) direct.push_back(index.Lookup(query, k));

  // Unique temp path: parallel fuzz/test processes must not collide.
  static std::atomic<uint64_t> counter{0};
  std::string base =
      (std::filesystem::temp_directory_path() /
       StringPrintf("ssjoin_fuzz_%d_%llu", static_cast<int>(::getpid()),
                    static_cast<unsigned long long>(
                        counter.fetch_add(1, std::memory_order_relaxed))))
          .string();

  CheckResult result;
  for (uint32_t version : {serve::kSnapshotVersion, serve::kSnapshotVersionNested}) {
    std::string path = base + "_v" + std::to_string(version) + ".snap";
    Status saved = serve::SaveSnapshotAtVersion(index, path, version);
    if (!saved.ok()) {
      return CheckResult{false, "SaveSnapshot v" + std::to_string(version) +
                                    " failed: " + saved.ToString()};
    }
    Result<simjoin::FuzzyMatchIndex> loaded = serve::LoadSnapshot(path);
    std::filesystem::remove(path);
    if (!loaded.ok()) {
      return CheckResult{false, "LoadSnapshot v" + std::to_string(version) +
                                    " failed: " + loaded.status().ToString()};
    }
    for (size_t i = 0; i < rp.s.size(); ++i) {
      if (!SameLookups("snapshot v" + std::to_string(version),
                       loaded->Lookup(rp.s[i], k), direct[i], rp.s[i],
                       &result.detail)) {
        result.pass = false;
        return result;
      }
    }
  }
  return result;
}

/// Compares mutable-index results (doc ids) against immutable-index results
/// (reference row indexes). With doc_id == row index the sequences must be
/// bitwise identical, similarity included — the index subsystem's
/// equivalence contract.
bool SameServedLookups(const std::string& name,
                       const std::vector<index::MutableFuzzyIndex::Match>& got,
                       const std::vector<simjoin::FuzzyMatchIndex::Match>& want,
                       const std::string& query, std::string* detail) {
  if (got.size() != want.size()) {
    *detail = name + ": result count " + std::to_string(got.size()) + " vs " +
              std::to_string(want.size()) + " for query \"" + query + "\"";
    return false;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].id != want[i].ref_index ||
        got[i].similarity != want[i].similarity) {
      *detail = name + ": match " + std::to_string(i) + " diverges (" +
                PairStr(static_cast<uint32_t>(got[i].id), 0, got[i].similarity) +
                " vs " + PairStr(want[i].ref_index, 0, want[i].similarity) +
                ") for query \"" + query + "\"";
      return false;
    }
  }
  return true;
}

Result<CheckResult> CheckLookupService(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t k_raw, rp.GetUint("k", 3));
  size_t k = std::max<uint64_t>(1, k_raw);
  SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex::Options iopts,
                          IndexOptions(rp));
  SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex index,
                          simjoin::FuzzyMatchIndex::Build(rp.r, iopts));
  // The service owns a mutable index over the same rows (doc_id = row
  // index); its lookups must agree with the immutable build bit for bit.
  index::MutableIndexOptions mopts;
  mopts.match = iopts;
  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> service_index,
                          index::MutableFuzzyIndex::Create(mopts));
  std::vector<std::pair<uint64_t, std::string>> records;
  records.reserve(rp.r.size());
  for (size_t i = 0; i < rp.r.size(); ++i) records.emplace_back(i, rp.r[i]);
  SSJOIN_RETURN_NOT_OK(service_index->BulkLoad(records));

  serve::LookupServiceOptions options;
  SSJOIN_ASSIGN_OR_RETURN(bool cache_on, rp.GetBool("cache_on", true));
  options.cache_capacity = cache_on ? 256 : 0;
  SSJOIN_ASSIGN_OR_RETURN(uint64_t threads, rp.GetUint("threads", 1));
  options.exec.num_threads = std::max<uint64_t>(1, threads);
  SSJOIN_ASSIGN_OR_RETURN(uint64_t max_batch, rp.GetUint("max_batch", 4));
  options.max_batch = std::max<uint64_t>(1, max_batch);
  SSJOIN_ASSIGN_OR_RETURN(
      std::unique_ptr<serve::LookupService> service,
      serve::LookupService::Create(std::move(service_index), options));

  CheckResult result;
  std::string name = options.cache_capacity > 0 ? "LookupService (cache on)"
                                                : "LookupService (cache off)";
  // Two passes: pass 2 exercises the cache-hit path when caching is on.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& query : rp.s) {
      Result<std::vector<serve::LookupService::Match>> served =
          service->Lookup(query, k);
      if (!served.ok()) {
        return CheckResult{false, name + " Lookup failed: " +
                                      served.status().ToString()};
      }
      if (!SameServedLookups(name + (pass == 0 ? " pass1" : " pass2"), *served,
                             index.Lookup(query, k), query, &result.detail)) {
        result.pass = false;
        return result;
      }
    }
  }
  return result;
}

/// Differential check of the approximate tier against the exact oracle:
///  - precision: approx output ⊆ oracle, with exact overlaps;
///  - determinism: the parallel run is bitwise identical to the serial run;
///  - recall: |approx| / |oracle| >= target_recall (counting suffices
///    because the subset property has already been established);
///  - hybrid: whatever tier kHybrid routes to obeys the same bounds.
/// With `exact_floor` on, small workloads take the exact path and recall is
/// 1.0 by construction; with it off, the LSH path is forced whenever the
/// band tuner finds an in-budget plan.
Result<CheckResult> CheckRecall(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t q_raw, rp.GetUint("q", 3));
  size_t q = std::max<uint64_t>(1, q_raw);
  SSJOIN_ASSIGN_OR_RETURN(uint64_t weight_mode, rp.GetUint("weight_mode", 1));
  auto mode = static_cast<WeightMode>(weight_mode % 3);
  SSJOIN_ASSIGN_OR_RETURN(bool word_tokens, rp.GetBool("word_tokens", true));
  std::unique_ptr<text::Tokenizer> tok = MakeTokenizer(word_tokens, q);
  SSJOIN_ASSIGN_OR_RETURN(Prepared prep,
                          PrepareStrings(rp.r, rp.s, *tok, mode));
  SSJOIN_ASSIGN_OR_RETURN(core::OverlapPredicate pred, MakePredicate(rp));

  approx::ApproxParams params;
  SSJOIN_ASSIGN_OR_RETURN(params.target_recall,
                          rp.GetDouble("target_recall", 0.9));
  SSJOIN_ASSIGN_OR_RETURN(params.seed, rp.GetUint("minhash_seed", 1));
  SSJOIN_ASSIGN_OR_RETURN(bool exact_floor, rp.GetBool("exact_floor", true));
  if (!exact_floor) params.exact_floor_pairs = 0;
  params.recall_sample = 16;

  std::vector<core::SSJoinPair> oracle =
      SSJoinOracle(prep.r, prep.s, prep.weights, pred);
  std::vector<MatchPair> oracle_matches = ToMatches(oracle);

  exec::ExecContext parallel_ctx;
  SSJOIN_ASSIGN_OR_RETURN(uint64_t threads, rp.GetUint("threads", 2));
  parallel_ctx.num_threads = std::max<uint64_t>(2, threads);
  SSJOIN_ASSIGN_OR_RETURN(uint64_t morsel, rp.GetUint("morsel", 2));
  parallel_ctx.morsel_size = std::max<uint64_t>(1, morsel);

  CheckResult result;
  std::vector<MatchPair> serial_matches;
  for (core::SSJoinAlgorithm algorithm :
       {core::SSJoinAlgorithm::kApprox, core::SSJoinAlgorithm::kHybrid}) {
    for (bool parallel : {false, true}) {
      core::SSJoinContext ctx = prep.Context();
      if (parallel) ctx.exec = &parallel_ctx;
      Result<std::vector<core::SSJoinPair>> got = approx::ExecuteSSJoin(
          algorithm, prep.r, prep.s, pred, ctx, params, nullptr);
      std::string name = std::string(core::SSJoinAlgorithmName(algorithm)) +
                         (parallel ? " (parallel)" : " (serial)");
      if (!got.ok()) {
        return CheckResult{false, name + " failed: " + got.status().ToString()};
      }
      std::vector<MatchPair> matches = ToMatches(*got);
      if (!SubsetOf(name + " (precision)", matches, oracle_matches,
                    kOverlapTol, &result.detail)) {
        result.pass = false;
        return result;
      }
      if (!oracle_matches.empty()) {
        double recall = static_cast<double>(matches.size()) /
                        static_cast<double>(oracle_matches.size());
        if (recall + 1e-12 < params.target_recall) {
          return CheckResult{
              false, name + ": recall " + StringPrintf("%.6f", recall) +
                         " below target " +
                         StringPrintf("%.6f", params.target_recall) + " (" +
                         std::to_string(matches.size()) + "/" +
                         std::to_string(oracle_matches.size()) + " pairs)"};
        }
      }
      if (algorithm == core::SSJoinAlgorithm::kApprox) {
        if (!parallel) {
          serial_matches = matches;
        } else if (!SameMatches("approx parallel-vs-serial", matches,
                                serial_matches, 0.0, &result.detail)) {
          result.pass = false;
          return result;
        }
      }
    }
  }
  return result;
}

/// Removes a scratch data directory on scope exit (durable fuzz cases).
struct ScratchDirGuard {
  std::string dir;
  ~ScratchDirGuard() {
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

/// Differential churn fuzz for the mutable index. Each `r` string encodes
/// one operation:
///   "u<id>\x1f<value>"  upsert       "d<id>"  delete
///   "s"  seal           "c"  compact "x"  kill + reopen (durable only)
/// Malformed strings are no-ops, so ddmin byte-shrinking always yields a
/// valid case. After EVERY applied op, all `s` queries are checked bitwise
/// (ids and similarities) against a from-scratch immutable build over the
/// live records sorted by ascending doc_id — the equivalence contract under
/// arbitrary interleavings, epoch by epoch.
Result<CheckResult> CheckMutableIndex(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t k_raw, rp.GetUint("k", 3));
  size_t k = std::max<uint64_t>(1, k_raw);
  index::MutableIndexOptions mopts;
  SSJOIN_ASSIGN_OR_RETURN(mopts.match, IndexOptions(rp));
  SSJOIN_ASSIGN_OR_RETURN(mopts.seal_threshold,
                          rp.GetUint("seal_threshold", 0));
  SSJOIN_ASSIGN_OR_RETURN(mopts.max_generations,
                          rp.GetUint("max_generations", 0));
  SSJOIN_ASSIGN_OR_RETURN(const bool durable, rp.GetBool("durable", false));

  ScratchDirGuard guard;
  if (durable) {
    static std::atomic<uint64_t> counter{0};
    guard.dir =
        (std::filesystem::temp_directory_path() /
         StringPrintf("ssjoin_fuzz_mut_%d_%llu", static_cast<int>(::getpid()),
                      static_cast<unsigned long long>(
                          counter.fetch_add(1, std::memory_order_relaxed))))
            .string();
    std::filesystem::remove_all(guard.dir);
    mopts.data_dir = guard.dir;
  }

  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                          index::MutableFuzzyIndex::Create(mopts));
  std::map<uint64_t, std::string> live;
  CheckResult result;

  auto check_epoch = [&](const std::string& ctx) -> Result<bool> {
    std::vector<uint64_t> ids;
    std::vector<std::string> refs;
    ids.reserve(live.size());
    refs.reserve(live.size());
    for (const auto& [id, value] : live) {
      ids.push_back(id);
      refs.push_back(value);
    }
    SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex oracle,
                            simjoin::FuzzyMatchIndex::Build(refs, mopts.match));
    for (const std::string& query : rp.s) {
      std::vector<index::MutableFuzzyIndex::Match> got = index->Lookup(query, k);
      std::vector<simjoin::FuzzyMatchIndex::Match> want = oracle.Lookup(query, k);
      if (got.size() != want.size()) {
        result.detail = "mutable_index after '" + ctx + "': result count " +
                        std::to_string(got.size()) + " vs oracle " +
                        std::to_string(want.size()) + " for query \"" + query +
                        "\"";
        return false;
      }
      for (size_t i = 0; i < got.size(); ++i) {
        if (got[i].id != ids[want[i].ref_index] ||
            got[i].similarity != want[i].similarity) {
          result.detail =
              "mutable_index after '" + ctx + "': match " + std::to_string(i) +
              " diverges (id=" + std::to_string(got[i].id) +
              " sim=" + StringPrintf("%.17g", got[i].similarity) +
              " vs oracle id=" + std::to_string(ids[want[i].ref_index]) +
              " sim=" + StringPrintf("%.17g", want[i].similarity) +
              ") for query \"" + query + "\"";
          return false;
        }
      }
    }
    return true;
  };

  for (const std::string& op : rp.r) {
    if (op.empty()) continue;
    if (op[0] == 'u') {
      size_t sep = op.find('\x1f');
      if (sep == std::string::npos || sep <= 1) continue;
      char* end = nullptr;
      uint64_t id = std::strtoull(op.c_str() + 1, &end, 10);
      if (end != op.c_str() + sep) continue;
      std::string value = op.substr(sep + 1);
      SSJOIN_RETURN_NOT_OK(index->Upsert(id, value));
      live[id] = std::move(value);
    } else if (op[0] == 'd') {
      if (op.size() < 2) continue;
      char* end = nullptr;
      uint64_t id = std::strtoull(op.c_str() + 1, &end, 10);
      if (end != op.c_str() + op.size()) continue;
      SSJOIN_RETURN_NOT_OK(index->Delete(id));
      live.erase(id);
    } else if (op == "s") {
      SSJOIN_RETURN_NOT_OK(index->Seal());
    } else if (op == "c") {
      SSJOIN_RETURN_NOT_OK(index->Compact());
    } else if (op == "x" && durable) {
      index.reset();
      SSJOIN_ASSIGN_OR_RETURN(index, index::MutableFuzzyIndex::Open(mopts));
    } else {
      continue;  // unknown op byte: no-op, keeps shrinking safe
    }
    SSJOIN_ASSIGN_OR_RETURN(bool ok, check_epoch(op));
    if (!ok) {
      result.pass = false;
      return result;
    }
  }
  SSJOIN_ASSIGN_OR_RETURN(bool ok, check_epoch("<end>"));
  result.pass = ok;
  return result;
}

/// Deterministic attributes for a churned (id, value) doc: drawn from the
/// content hash so a shrunk op string still reproduces the same attributes.
/// Roughly a fifth of docs carry no country and a third no tier, keeping the
/// absent-attribute edge of the filter semantics in every workload.
filter::AttrSet FuzzAttrsFor(uint64_t id, const std::string& value) {
  static const char* const kCountries[] = {"DE", "FR", "US", "JP"};
  filter::AttrSet attrs;
  uint64_t h = HashCombine(HashString(value), id);
  if (h % 5 != 4) {
    (void)attrs.Set("country", filter::AttrValue::String(kCountries[h % 4]));
  }
  if ((h >> 8) % 3 != 2) {
    (void)attrs.Set("tier", filter::AttrValue::Int64(
                                static_cast<int64_t>((h >> 16) % 4)));
  }
  return attrs;
}

/// Builds the seed-drawn predicate of a `filtered_lookup` case from its
/// `f_*` params. Selector values one past the drawn range intentionally
/// produce zero-match conjuncts ("ZZ", tier 4); `f_ghost` adds a conjunct on
/// an attribute no doc ever carries.
Result<filter::FilterPredicate> FuzzPredicate(const Reproducer& rp) {
  static const char* const kCountries[] = {"DE", "FR", "US", "JP", "ZZ"};
  filter::FilterPredicate pred;
  SSJOIN_ASSIGN_OR_RETURN(uint64_t country_sel, rp.GetUint("f_country", 5));
  if (country_sel < 5) {
    filter::FilterConjunct c;
    c.name = "country";
    SSJOIN_ASSIGN_OR_RETURN(c.negated, rp.GetBool("f_country_neg", false));
    c.values.push_back(filter::AttrValue::String(kCountries[country_sel]));
    SSJOIN_ASSIGN_OR_RETURN(bool wide, rp.GetBool("f_country_wide", false));
    if (wide) {
      c.values.push_back(
          filter::AttrValue::String(kCountries[(country_sel + 1) % 5]));
    }
    SSJOIN_RETURN_NOT_OK(pred.AddConjunct(std::move(c)));
  }
  SSJOIN_ASSIGN_OR_RETURN(uint64_t tier_sel, rp.GetUint("f_tier", 5));
  if (tier_sel < 5) {
    filter::FilterConjunct c;
    c.name = "tier";
    SSJOIN_ASSIGN_OR_RETURN(c.negated, rp.GetBool("f_tier_neg", false));
    c.values.push_back(
        filter::AttrValue::Int64(static_cast<int64_t>(tier_sel)));
    SSJOIN_RETURN_NOT_OK(pred.AddConjunct(std::move(c)));
  }
  SSJOIN_ASSIGN_OR_RETURN(bool ghost, rp.GetBool("f_ghost", false));
  if (ghost) {
    filter::FilterConjunct c;
    c.name = "ghost";
    SSJOIN_ASSIGN_OR_RETURN(c.negated, rp.GetBool("f_ghost_neg", false));
    c.values.push_back(filter::AttrValue::Int64(1));
    SSJOIN_RETURN_NOT_OK(pred.AddConjunct(std::move(c)));
  }
  return pred;
}

/// Differential fuzz for the filtered-lookup contract: the same churn op
/// encoding as `mutable_index` ("u<id>\x1f<value>", "d<id>", "s", "c", "x"),
/// with every upsert carrying content-derived attributes. After EVERY op,
/// for every query, the filtered lookup (BE-index composed with similarity
/// candidate generation) must be bitwise identical to the exact post-filter
/// oracle — the unfiltered lookup with unbounded k, records failing
/// FilterPredicate::Matches dropped, truncated to k — and the empty filter
/// must be byte-identical to the unfiltered overload.
Result<CheckResult> CheckFilteredLookup(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t k_raw, rp.GetUint("k", 3));
  size_t k = std::max<uint64_t>(1, k_raw);
  index::MutableIndexOptions mopts;
  SSJOIN_ASSIGN_OR_RETURN(mopts.match, IndexOptions(rp));
  SSJOIN_ASSIGN_OR_RETURN(mopts.seal_threshold,
                          rp.GetUint("seal_threshold", 0));
  SSJOIN_ASSIGN_OR_RETURN(mopts.max_generations,
                          rp.GetUint("max_generations", 0));
  SSJOIN_ASSIGN_OR_RETURN(const bool durable, rp.GetBool("durable", false));
  SSJOIN_ASSIGN_OR_RETURN(filter::FilterPredicate pred, FuzzPredicate(rp));

  ScratchDirGuard guard;
  if (durable) {
    static std::atomic<uint64_t> counter{0};
    guard.dir =
        (std::filesystem::temp_directory_path() /
         StringPrintf("ssjoin_fuzz_filt_%d_%llu", static_cast<int>(::getpid()),
                      static_cast<unsigned long long>(
                          counter.fetch_add(1, std::memory_order_relaxed))))
            .string();
    std::filesystem::remove_all(guard.dir);
    mopts.data_dir = guard.dir;
  }

  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                          index::MutableFuzzyIndex::Create(mopts));
  CheckResult result;

  auto check_epoch = [&](const std::string& ctx) -> bool {
    std::shared_ptr<const index::EpochState> state = index->Snapshot();
    const filter::FilterPredicate empty_pred;
    for (const std::string& query : rp.s) {
      std::vector<index::MutableFuzzyIndex::Match> got =
          index->LookupAt(*state, query, k, 1.0, pred);
      // Oracle: unbounded-k unfiltered lookup, post-filtered, truncated.
      std::vector<index::MutableFuzzyIndex::Match> all = index->LookupAt(
          *state, query, static_cast<size_t>(state->live_docs) + 1);
      std::vector<index::MutableFuzzyIndex::Match> want;
      for (const auto& m : all) {
        std::optional<filter::AttrSet> attrs = index->AttrsAt(*state, m.id);
        if (!attrs) {
          result.detail = "filtered_lookup after '" + ctx +
                          "': live match id " + std::to_string(m.id) +
                          " has no attribute set";
          return false;
        }
        if (pred.Matches(*attrs)) want.push_back(m);
        if (want.size() == k) break;
      }
      if (got.size() != want.size()) {
        result.detail = "filtered_lookup after '" + ctx + "': filtered count " +
                        std::to_string(got.size()) + " vs post-filter oracle " +
                        std::to_string(want.size()) + " for query \"" + query +
                        "\" pred " + pred.CanonicalJson();
        return false;
      }
      for (size_t i = 0; i < got.size(); ++i) {
        if (got[i].id != want[i].id ||
            got[i].similarity != want[i].similarity) {
          result.detail =
              "filtered_lookup after '" + ctx + "': match " +
              std::to_string(i) + " diverges (id=" + std::to_string(got[i].id) +
              " sim=" + StringPrintf("%.17g", got[i].similarity) +
              " vs oracle id=" + std::to_string(want[i].id) +
              " sim=" + StringPrintf("%.17g", want[i].similarity) +
              ") for query \"" + query + "\" pred " + pred.CanonicalJson();
          return false;
        }
      }
      // The empty filter must take the identical code path result.
      std::vector<index::MutableFuzzyIndex::Match> plain =
          index->LookupAt(*state, query, k);
      std::vector<index::MutableFuzzyIndex::Match> via_empty =
          index->LookupAt(*state, query, k, 1.0, empty_pred);
      if (plain.size() != via_empty.size()) {
        result.detail = "filtered_lookup after '" + ctx +
                        "': empty filter changed result count for query \"" +
                        query + "\"";
        return false;
      }
      for (size_t i = 0; i < plain.size(); ++i) {
        if (plain[i].id != via_empty[i].id ||
            plain[i].similarity != via_empty[i].similarity) {
          result.detail = "filtered_lookup after '" + ctx +
                          "': empty filter diverges at match " +
                          std::to_string(i) + " for query \"" + query + "\"";
          return false;
        }
      }
    }
    return true;
  };

  for (const std::string& op : rp.r) {
    if (op.empty()) continue;
    if (op[0] == 'u') {
      size_t sep = op.find('\x1f');
      if (sep == std::string::npos || sep <= 1) continue;
      char* end = nullptr;
      uint64_t id = std::strtoull(op.c_str() + 1, &end, 10);
      if (end != op.c_str() + sep) continue;
      std::string value = op.substr(sep + 1);
      SSJOIN_RETURN_NOT_OK(index->Upsert(id, value, FuzzAttrsFor(id, value)));
    } else if (op[0] == 'd') {
      if (op.size() < 2) continue;
      char* end = nullptr;
      uint64_t id = std::strtoull(op.c_str() + 1, &end, 10);
      if (end != op.c_str() + op.size()) continue;
      SSJOIN_RETURN_NOT_OK(index->Delete(id));
    } else if (op == "s") {
      SSJOIN_RETURN_NOT_OK(index->Seal());
    } else if (op == "c") {
      SSJOIN_RETURN_NOT_OK(index->Compact());
    } else if (op == "x" && durable) {
      index.reset();
      SSJOIN_ASSIGN_OR_RETURN(index, index::MutableFuzzyIndex::Open(mopts));
    } else {
      continue;  // unknown op byte: no-op, keeps shrinking safe
    }
    if (!check_epoch(op)) {
      result.pass = false;
      return result;
    }
  }
  result.pass = check_epoch("<end>");
  return result;
}

/// Differential churn fuzz for the sharded index: the same op encoding as
/// `mutable_index` ("u<id>\x1f<value>", "d<id>", "s", "c", "x"), applied to
/// a ShardedLookupIndex with a seed-drawn shard count, checked bitwise after
/// EVERY op against the 1-shard oracle semantics (a from-scratch immutable
/// build over the live records) — the shard-count invariance contract under
/// arbitrary upsert/delete/seal/compact/reopen interleavings.
Result<CheckResult> CheckShardedLookup(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t k_raw, rp.GetUint("k", 3));
  size_t k = std::max<uint64_t>(1, k_raw);
  shard::ShardedIndexOptions sopts;
  SSJOIN_ASSIGN_OR_RETURN(uint64_t shards, rp.GetUint("shards", 2));
  sopts.num_shards = static_cast<uint32_t>(std::max<uint64_t>(1, shards));
  SSJOIN_ASSIGN_OR_RETURN(sopts.match, IndexOptions(rp));
  SSJOIN_ASSIGN_OR_RETURN(sopts.seal_threshold,
                          rp.GetUint("seal_threshold", 0));
  SSJOIN_ASSIGN_OR_RETURN(sopts.max_generations,
                          rp.GetUint("max_generations", 0));
  SSJOIN_ASSIGN_OR_RETURN(const bool durable, rp.GetBool("durable", false));

  ScratchDirGuard guard;
  if (durable) {
    static std::atomic<uint64_t> counter{0};
    guard.dir =
        (std::filesystem::temp_directory_path() /
         StringPrintf("ssjoin_fuzz_shard_%d_%llu", static_cast<int>(::getpid()),
                      static_cast<unsigned long long>(
                          counter.fetch_add(1, std::memory_order_relaxed))))
            .string();
    std::filesystem::remove_all(guard.dir);
    sopts.data_dir = guard.dir;
  }

  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<shard::ShardedLookupIndex> index,
                          shard::ShardedLookupIndex::Create(sopts));
  std::map<uint64_t, std::string> live;
  CheckResult result;

  auto check_epoch = [&](const std::string& ctx) -> Result<bool> {
    std::vector<uint64_t> ids;
    std::vector<std::string> refs;
    ids.reserve(live.size());
    refs.reserve(live.size());
    for (const auto& [id, value] : live) {
      ids.push_back(id);
      refs.push_back(value);
    }
    SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex oracle,
                            simjoin::FuzzyMatchIndex::Build(refs, sopts.match));
    for (const std::string& query : rp.s) {
      SSJOIN_ASSIGN_OR_RETURN(std::vector<index::MutableFuzzyIndex::Match> got,
                              index->Lookup(query, k));
      std::vector<simjoin::FuzzyMatchIndex::Match> want = oracle.Lookup(query, k);
      if (got.size() != want.size()) {
        result.detail = "sharded_lookup N=" +
                        std::to_string(sopts.num_shards) + " after '" + ctx +
                        "': result count " + std::to_string(got.size()) +
                        " vs oracle " + std::to_string(want.size()) +
                        " for query \"" + query + "\"";
        return false;
      }
      for (size_t i = 0; i < got.size(); ++i) {
        if (got[i].id != ids[want[i].ref_index] ||
            got[i].similarity != want[i].similarity) {
          result.detail =
              "sharded_lookup N=" + std::to_string(sopts.num_shards) +
              " after '" + ctx + "': match " + std::to_string(i) +
              " diverges (id=" + std::to_string(got[i].id) +
              " sim=" + StringPrintf("%.17g", got[i].similarity) +
              " vs oracle id=" + std::to_string(ids[want[i].ref_index]) +
              " sim=" + StringPrintf("%.17g", want[i].similarity) +
              ") for query \"" + query + "\"";
          return false;
        }
      }
    }
    return true;
  };

  for (const std::string& op : rp.r) {
    if (op.empty()) continue;
    if (op[0] == 'u') {
      size_t sep = op.find('\x1f');
      if (sep == std::string::npos || sep <= 1) continue;
      char* end = nullptr;
      uint64_t id = std::strtoull(op.c_str() + 1, &end, 10);
      if (end != op.c_str() + sep) continue;
      std::string value = op.substr(sep + 1);
      SSJOIN_RETURN_NOT_OK(index->Upsert(id, value));
      live[id] = std::move(value);
    } else if (op[0] == 'd') {
      if (op.size() < 2) continue;
      char* end = nullptr;
      uint64_t id = std::strtoull(op.c_str() + 1, &end, 10);
      if (end != op.c_str() + op.size()) continue;
      SSJOIN_RETURN_NOT_OK(index->Delete(id));
      live.erase(id);
    } else if (op == "s") {
      SSJOIN_RETURN_NOT_OK(index->Seal());
    } else if (op == "c") {
      SSJOIN_RETURN_NOT_OK(index->Compact());
    } else if (op == "x" && durable) {
      index.reset();
      shard::ShardedIndexOptions reopen = sopts;
      reopen.num_shards = 0;  // take the persisted shard count
      SSJOIN_ASSIGN_OR_RETURN(index, shard::ShardedLookupIndex::Open(reopen));
    } else {
      continue;  // unknown op byte: no-op, keeps shrinking safe
    }
    SSJOIN_ASSIGN_OR_RETURN(bool ok, check_epoch(op));
    if (!ok) {
      result.pass = false;
      return result;
    }
  }
  SSJOIN_ASSIGN_OR_RETURN(bool ok, check_epoch("<end>"));
  result.pass = ok;
  return result;
}

Result<CheckResult> CheckWireParser(const Reproducer& rp) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t k_raw, rp.GetUint("k", 3));
  uint64_t k = std::max<uint64_t>(1, k_raw);
  SSJOIN_ASSIGN_OR_RETURN(uint64_t deadline_ms, rp.GetUint("deadline_ms", 0));
  SSJOIN_ASSIGN_OR_RETURN(uint64_t mutations, rp.GetUint("mutations", 32));
  SSJOIN_ASSIGN_OR_RETURN(uint64_t mutate_seed, rp.GetUint("mutate_seed", 1));
  Rng rng(mutate_seed);

  CheckResult result;
  for (const std::string& query : rp.r) {
    std::string line = "{\"op\": \"lookup\", \"query\": \"" +
                       serve::JsonEscape(query) + "\", \"k\": " +
                       std::to_string(k);
    if (deadline_ms > 0) {
      line += ", \"deadline_ms\": " + std::to_string(deadline_ms);
    }
    line += "}";

    Result<std::map<std::string, serve::JsonScalar>> parsed =
        serve::ParseJsonObject(line);
    if (!parsed.ok()) {
      return CheckResult{false, "valid request rejected: " +
                                    parsed.status().ToString() + " for " + line};
    }
    auto q = parsed->find("query");
    if (q == parsed->end() ||
        q->second.type != serve::JsonScalar::Type::kString ||
        q->second.str != query) {
      return CheckResult{false,
                         "query did not round-trip byte-exactly for " + line};
    }
    auto kf = parsed->find("k");
    if (kf == parsed->end() ||
        kf->second.type != serve::JsonScalar::Type::kNumber ||
        kf->second.num != static_cast<double>(k)) {
      return CheckResult{false, "k did not round-trip for " + line};
    }

    // The object's closing '}' is its last byte (any earlier '}' sits inside
    // a string literal), so no strict prefix may parse: a truncated line must
    // always be reported, never silently accepted.
    for (size_t len = 0; len < line.size(); ++len) {
      if (serve::ParseJsonObject(std::string_view(line).substr(0, len)).ok()) {
        return CheckResult{false, "strict prefix of length " +
                                      std::to_string(len) +
                                      " parsed as valid: " + line};
      }
    }

    // Random byte-level mutations: the parser must return (not crash) and be
    // deterministic — the same bytes always yield the same accept/reject.
    for (uint64_t m = 0; m < mutations; ++m) {
      std::string mutated = MutateString(&rng, line);
      bool first = serve::ParseJsonObject(mutated).ok();
      bool second = serve::ParseJsonObject(mutated).ok();
      if (first != second) {
        return CheckResult{false,
                           "non-deterministic parse of mutated line: " + mutated};
      }
    }
  }

  // Raw adversarial lines (empty, high-byte, repeated-char, ...) straight
  // into the parser: any outcome is fine as long as it returns.
  for (const std::string& raw : rp.s) {
    (void)serve::ParseJsonObject(raw);
  }
  return result;
}

// ---------------------------------------------------------------------------
// kernel_diff: every kernel tier vs the scalar oracle over adversarial spans
// ---------------------------------------------------------------------------

/// Decodes one whitespace-delimited number string into a sorted uint32 span.
/// Lenient by design so the shrinker can hand us any substring: unparsable
/// pieces are dropped, values are clamped to the weight-table range, and the
/// result is re-sorted (kernels require ascending input). Duplicates are
/// kept — multiset min-multiplicity is part of the contract under test.
std::vector<uint32_t> DecodeSpan(const std::string& text, uint32_t max_value) {
  std::vector<uint32_t> out;
  for (const std::string& piece : SplitAndDropEmpty(text, " \t,")) {
    Result<uint64_t> v = ParseUint64(piece);
    if (!v.ok()) continue;
    out.push_back(static_cast<uint32_t>(*v % (uint64_t{max_value} + 1)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Token values stay below this so a dense weight table is allocatable.
/// Chosen just past 2^16 so spans can straddle the 65535/65536 boundary
/// (16-bit truncation bugs in a compare kernel show up exactly there).
constexpr uint32_t kKernelDiffMaxToken = 70000;

Result<CheckResult> CheckKernelDiff(const Reproducer& rp) {
  CheckResult result;
  const size_t pairs = std::min(rp.r.size(), rp.s.size());

  // Deterministic, irregular weights: equal results across tiers must come
  // from equal match sequences, not from weights that forgive reordering.
  std::vector<double> weights(size_t{kKernelDiffMaxToken} + 1);
  for (size_t t = 0; t < weights.size(); ++t) {
    weights[t] = 0.125 + static_cast<double>(t % 97) * 0.0625;
  }

  const std::vector<kernels::Tier> tiers = kernels::AvailableTiers();
  for (size_t p = 0; p < pairs; ++p) {
    std::vector<uint32_t> a = DecodeSpan(rp.r[p], kKernelDiffMaxToken);
    std::vector<uint32_t> b = DecodeSpan(rp.s[p], kKernelDiffMaxToken);

    // Scalar-tier oracle for every kernel entry point.
    const size_t want_count =
        kernels::IntersectCountTier(kernels::Tier::kScalar, a, b);
    size_t want_matches = 0;
    const double want_overlap = kernels::IntersectWeightedTier(
        kernels::Tier::kScalar, a, b, weights.data(), &want_matches);
    std::vector<uint32_t> want_tokens(std::min(a.size(), b.size()));
    want_tokens.resize(kernels::IntersectTokensTier(
        kernels::Tier::kScalar, a, b, want_tokens.data()));
    std::vector<double> a_weights(a.size());
    for (size_t i = 0; i < a.size(); ++i) a_weights[i] = weights[a[i]];
    const double want_cols = kernels::IntersectWeightedColsTier(
        kernels::Tier::kScalar, a, a_weights, b);
    std::vector<uint32_t> seen(size_t{kKernelDiffMaxToken} + 1, 0);
    std::vector<uint32_t> want_probe;
    // Probe the same postings twice in one epoch: the second pass must be
    // filtered entirely by the seen-epoch table.
    kernels::ProbePostingsTier(kernels::Tier::kScalar, a, 1, seen.data(),
                               &want_probe);
    kernels::ProbePostingsTier(kernels::Tier::kScalar, a, 1, seen.data(),
                               &want_probe);

    for (kernels::Tier tier : tiers) {
      if (tier == kernels::Tier::kScalar) continue;
      const char* tn = kernels::TierName(tier);
      const std::string where =
          StringPrintf("pair %zu (|a|=%zu, |b|=%zu) tier %s", p, a.size(),
                       b.size(), tn);
      size_t got_count = kernels::IntersectCountTier(tier, a, b);
      if (got_count != want_count) {
        return CheckResult{false, where + ": IntersectCount " +
                                      std::to_string(got_count) + " != " +
                                      std::to_string(want_count)};
      }
      size_t got_matches = 0;
      double got_overlap = kernels::IntersectWeightedTier(
          tier, a, b, weights.data(), &got_matches);
      if (got_matches != want_matches || got_overlap != want_overlap) {
        return CheckResult{
            false, where + StringPrintf(": IntersectWeighted %.17g/%zu != "
                                        "%.17g/%zu",
                                        got_overlap, got_matches, want_overlap,
                                        want_matches)};
      }
      std::vector<uint32_t> got_tokens(std::min(a.size(), b.size()));
      got_tokens.resize(
          kernels::IntersectTokensTier(tier, a, b, got_tokens.data()));
      if (got_tokens != want_tokens) {
        return CheckResult{false, where + ": IntersectTokens sequence differs"};
      }
      double got_cols = kernels::IntersectWeightedColsTier(tier, a, a_weights, b);
      if (got_cols != want_cols) {
        return CheckResult{
            false, where + StringPrintf(": IntersectWeightedCols %.17g != %.17g",
                                        got_cols, want_cols)};
      }
      std::fill(seen.begin(), seen.end(), 0);
      std::vector<uint32_t> got_probe;
      kernels::ProbePostingsTier(tier, a, 1, seen.data(), &got_probe);
      kernels::ProbePostingsTier(tier, a, 1, seen.data(), &got_probe);
      if (got_probe != want_probe) {
        return CheckResult{false, where + ": ProbePostings sequence differs"};
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

/// One adversarial span for kernel_diff, encoded as a space-delimited number
/// string. The classes target exactly the kernel edge paths: empty and
/// length-1 spans, all-equal runs (multiset multiplicity), disjoint ranges
/// (zero-match fast paths), values straddling 2^16, lengths at SIMD block
/// boundaries (multiples of 4/8/16 plus or minus one → every tail length),
/// and long spans for the gallop skew heuristic.
std::string GenerateKernelSpan(Rng* rng) {
  uint64_t cls = rng->Uniform(100);
  size_t len;
  if (cls < 8) {
    return "";  // empty span
  } else if (cls < 16) {
    len = 1;
  } else if (cls < 30) {
    // All-equal run: every element the same value.
    len = 1 + rng->Uniform(40);
    uint64_t v = rng->Uniform(70001);
    std::string out;
    for (size_t i = 0; i < len; ++i) {
      if (!out.empty()) out.push_back(' ');
      out += std::to_string(v);
    }
    return out;
  } else if (cls < 45) {
    // Block-boundary length: w*k ± 1 for SIMD widths.
    const uint64_t widths[] = {4, 8, 16, 32};
    uint64_t w = widths[rng->Uniform(4)];
    len = static_cast<size_t>(w * (1 + rng->Uniform(4)) + rng->Uniform(3)) - 1;
  } else if (cls < 55) {
    len = 64 + rng->Uniform(512);  // long span → skewed pairs hit gallop
  } else {
    len = rng->Uniform(34);  // short spans, every length 0..33
  }
  // Value population: dense low range (forces matches + duplicates), a
  // window straddling 65535/65536, or a disjoint high block.
  uint64_t pop = rng->Uniform(100);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    uint64_t v;
    if (pop < 45) {
      v = rng->Uniform(48);
    } else if (pop < 70) {
      v = 65504 + rng->Uniform(64);
    } else if (pop < 85) {
      v = 50000 + rng->Uniform(200);
    } else {
      v = rng->Uniform(70001);
    }
    size_t reps = rng->Bernoulli(0.25) ? 1 + rng->Uniform(3) : 1;
    for (size_t k = 0; k < reps; ++k) {
      if (!out.empty()) out.push_back(' ');
      out += std::to_string(v);
    }
  }
  return out;
}

void GenerateCollections(Rng* rng, const WorkloadOptions& opts, Reproducer* rp) {
  rp->r = GenerateStrings(rng, opts);
  // Self-joins get their own draw: many bugs (and the paper's experiments)
  // are self-join shaped.
  rp->s = rng->Bernoulli(0.3) ? rp->r : GenerateStrings(rng, opts);
}

}  // namespace

std::vector<std::string> AllScenarios() {
  return {"ssjoin_executors",      "edit_distance_joins",
          "edit_similarity_joins", "jaccard_joins",
          "ges_join",              "snapshot_roundtrip",
          "lookup_service",        "mutable_index",
          "sharded_lookup",        "filtered_lookup",
          "wire_parser",           "recall",
          "kernel_diff"};
}

Reproducer GenerateCase(const std::string& scenario, uint64_t seed) {
  Reproducer rp;
  rp.scenario = scenario;
  rp.Set("seed", seed);
  Rng rng(HashCombine(HashString(scenario), seed));
  WorkloadOptions wopts;

  if (scenario == "ssjoin_executors") {
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("word_tokens", rng.Bernoulli(0.7));
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("weight_mode", rng.Uniform(3));
    rp.Set("pred_kind", rng.Uniform(3));
    rp.Set("alpha", 0.1 + 0.85 * rng.NextDouble());
    rp.Set("threshold", 0.25 + 3.75 * rng.NextDouble());
    rp.Set("threads", 2 + rng.Uniform(3));
    rp.Set("morsel", 1 + rng.Uniform(4));
  } else if (scenario == "edit_distance_joins") {
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("max_distance", rng.Uniform(4));
    rp.Set("algorithm", rng.Uniform(5));
    rp.Set("threads", 1 + rng.Uniform(2));
    rp.Set("morsel", 1 + rng.Uniform(4));
  } else if (scenario == "edit_similarity_joins") {
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("alpha", 0.3 + 0.65 * rng.NextDouble());
    rp.Set("algorithm", rng.Uniform(5));
    rp.Set("threads", 1 + rng.Uniform(2));
    rp.Set("morsel", 1 + rng.Uniform(4));
  } else if (scenario == "jaccard_joins") {
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("word_tokens", rng.Bernoulli(0.6));
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("weight_mode", rng.Uniform(3));
    rp.Set("alpha", 0.2 + 0.7 * rng.NextDouble());
    rp.Set("algorithm", rng.Uniform(5));
    rp.Set("threads", 1 + rng.Uniform(2));
    rp.Set("morsel", 1 + rng.Uniform(4));
  } else if (scenario == "ges_join") {
    // GES runs a recursive SSJoin plus a quadratic brute-force oracle; keep
    // the workload small.
    wopts.max_records = 8;
    wopts.max_length = 10;
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("alpha", 0.5 + 0.4 * rng.NextDouble());
  } else if (scenario == "snapshot_roundtrip") {
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("word_tokens", rng.Bernoulli(0.5));
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("alpha", 0.2 + 0.6 * rng.NextDouble());
    rp.Set("k", 1 + rng.Uniform(5));
  } else if (scenario == "lookup_service") {
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("word_tokens", rng.Bernoulli(0.5));
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("alpha", 0.2 + 0.6 * rng.NextDouble());
    rp.Set("k", 1 + rng.Uniform(5));
    rp.Set("cache_on", rng.Bernoulli(0.5));
    rp.Set("threads", 1 + rng.Uniform(2));
    rp.Set("max_batch", 1 + rng.Uniform(8));
  } else if (scenario == "mutable_index") {
    // Ops reference a small id space so upserts, replacements and deletes
    // collide often; values come from a shared pool so near-duplicates (the
    // interesting similarity regime) are common.
    wopts.max_records = 12;
    std::vector<std::string> pool = GenerateStrings(&rng, wopts);
    if (pool.empty()) pool.push_back("");
    rp.s = GenerateStrings(&rng, wopts);  // queries checked at every epoch
    bool durable = rng.Bernoulli(0.5);
    size_t num_ops = 1 + rng.Uniform(40);
    for (size_t i = 0; i < num_ops; ++i) {
      uint64_t roll = rng.Uniform(100);
      if (roll < 55) {
        rp.r.push_back("u" + std::to_string(rng.Uniform(10)) + "\x1f" +
                       pool[rng.Uniform(pool.size())]);
      } else if (roll < 75) {
        rp.r.push_back("d" + std::to_string(rng.Uniform(10)));
      } else if (roll < 85) {
        rp.r.push_back("s");
      } else if (roll < 92) {
        rp.r.push_back("c");
      } else {
        rp.r.push_back("x");  // no-op unless durable
      }
    }
    rp.Set("durable", durable);
    rp.Set("word_tokens", rng.Bernoulli(0.6));
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("alpha", 0.2 + 0.6 * rng.NextDouble());
    rp.Set("k", 1 + rng.Uniform(5));
    rp.Set("seal_threshold", rng.Bernoulli(0.3) ? 1 + rng.Uniform(8)
                                                : uint64_t{0});
    rp.Set("max_generations", rng.Bernoulli(0.3) ? 1 + rng.Uniform(3)
                                                 : uint64_t{0});
  } else if (scenario == "filtered_lookup") {
    // The mutable_index churn shape with content-derived attributes and a
    // seed-drawn predicate: selector one past the drawn attribute range
    // yields zero-match conjuncts, skipped selectors exercise the
    // one-conjunct and NOT-IN-only forms, and f_ghost adds a conjunct on an
    // attribute no doc carries.
    wopts.max_records = 12;
    std::vector<std::string> pool = GenerateStrings(&rng, wopts);
    if (pool.empty()) pool.push_back("");
    rp.s = GenerateStrings(&rng, wopts);
    bool durable = rng.Bernoulli(0.5);
    size_t num_ops = 1 + rng.Uniform(40);
    for (size_t i = 0; i < num_ops; ++i) {
      uint64_t roll = rng.Uniform(100);
      if (roll < 55) {
        rp.r.push_back("u" + std::to_string(rng.Uniform(10)) + "\x1f" +
                       pool[rng.Uniform(pool.size())]);
      } else if (roll < 75) {
        rp.r.push_back("d" + std::to_string(rng.Uniform(10)));
      } else if (roll < 85) {
        rp.r.push_back("s");
      } else if (roll < 92) {
        rp.r.push_back("c");
      } else {
        rp.r.push_back("x");  // no-op unless durable
      }
    }
    rp.Set("durable", durable);
    rp.Set("word_tokens", rng.Bernoulli(0.6));
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("alpha", 0.2 + 0.6 * rng.NextDouble());
    rp.Set("k", 1 + rng.Uniform(5));
    rp.Set("seal_threshold", rng.Bernoulli(0.3) ? 1 + rng.Uniform(8)
                                                : uint64_t{0});
    rp.Set("max_generations", rng.Bernoulli(0.3) ? 1 + rng.Uniform(3)
                                                 : uint64_t{0});
    rp.Set("f_country", rng.Uniform(7));  // 5, 6 = no country conjunct
    rp.Set("f_country_neg", rng.Bernoulli(0.4));
    rp.Set("f_country_wide", rng.Bernoulli(0.4));
    rp.Set("f_tier", rng.Uniform(7));  // 5, 6 = no tier conjunct
    rp.Set("f_tier_neg", rng.Bernoulli(0.4));
    rp.Set("f_ghost", rng.Bernoulli(0.2));
    rp.Set("f_ghost_neg", rng.Bernoulli(0.5));
  } else if (scenario == "sharded_lookup") {
    // Same churn shape as mutable_index, but applied to an N-shard index and
    // checked against the 1-shard oracle: random shard counts × interleaved
    // upserts and deletes is exactly where a stats-propagation bug would
    // surface as a one-ULP similarity difference.
    wopts.max_records = 12;
    std::vector<std::string> pool = GenerateStrings(&rng, wopts);
    if (pool.empty()) pool.push_back("");
    rp.s = GenerateStrings(&rng, wopts);
    bool durable = rng.Bernoulli(0.4);
    size_t num_ops = 1 + rng.Uniform(30);
    for (size_t i = 0; i < num_ops; ++i) {
      uint64_t roll = rng.Uniform(100);
      if (roll < 55) {
        rp.r.push_back("u" + std::to_string(rng.Uniform(10)) + "\x1f" +
                       pool[rng.Uniform(pool.size())]);
      } else if (roll < 75) {
        rp.r.push_back("d" + std::to_string(rng.Uniform(10)));
      } else if (roll < 85) {
        rp.r.push_back("s");
      } else if (roll < 92) {
        rp.r.push_back("c");
      } else {
        rp.r.push_back("x");  // no-op unless durable
      }
    }
    const uint64_t shard_counts[] = {2, 3, 4, 8};
    rp.Set("shards", shard_counts[rng.Uniform(4)]);
    rp.Set("durable", durable);
    rp.Set("word_tokens", rng.Bernoulli(0.6));
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("alpha", 0.2 + 0.6 * rng.NextDouble());
    rp.Set("k", 1 + rng.Uniform(5));
    rp.Set("seal_threshold", rng.Bernoulli(0.3) ? 1 + rng.Uniform(8)
                                                : uint64_t{0});
    rp.Set("max_generations", rng.Bernoulli(0.3) ? 1 + rng.Uniform(3)
                                                 : uint64_t{0});
  } else if (scenario == "recall") {
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("word_tokens", rng.Bernoulli(0.7));
    rp.Set("q", 1 + rng.Uniform(4));
    rp.Set("weight_mode", rng.Uniform(3));
    rp.Set("pred_kind", rng.Uniform(3));
    rp.Set("alpha", 0.1 + 0.85 * rng.NextDouble());
    rp.Set("threshold", 0.25 + 3.75 * rng.NextDouble());
    rp.Set("target_recall", 0.6 + 0.35 * rng.NextDouble());
    // Half the cases disable the exact floor so the LSH path is exercised
    // even at fuzz-sized workloads.
    rp.Set("exact_floor", rng.Bernoulli(0.5));
    rp.Set("minhash_seed", rng.Next());
    rp.Set("threads", 2 + rng.Uniform(3));
    rp.Set("morsel", 1 + rng.Uniform(4));
  } else if (scenario == "kernel_diff") {
    size_t pairs = 1 + rng.Uniform(8);
    for (size_t i = 0; i < pairs; ++i) {
      rp.r.push_back(GenerateKernelSpan(&rng));
      rp.s.push_back(GenerateKernelSpan(&rng));
    }
  } else if (scenario == "wire_parser") {
    // Lean harder on the adversarial string classes: control bytes, high
    // bytes and empty strings are exactly what a wire parser mishandles.
    wopts.p_high_byte = 0.25;
    wopts.p_empty = 0.15;
    GenerateCollections(&rng, wopts, &rp);
    rp.Set("k", 1 + rng.Uniform(10));
    rp.Set("deadline_ms", rng.Uniform(200));
    rp.Set("mutations", 16 + rng.Uniform(48));
    rp.Set("mutate_seed", rng.Next());
  } else {
    // Unknown scenario: leave an empty workload; CheckCase will reject it.
  }
  return rp;
}

Result<CheckResult> CheckCase(const Reproducer& repro) {
  if (repro.scenario == "ssjoin_executors") return CheckSSJoinExecutors(repro);
  if (repro.scenario == "edit_distance_joins") {
    return CheckEditDistanceJoins(repro);
  }
  if (repro.scenario == "edit_similarity_joins") {
    return CheckEditSimilarityJoins(repro);
  }
  if (repro.scenario == "jaccard_joins") return CheckJaccardJoins(repro);
  if (repro.scenario == "ges_join") return CheckGESJoin(repro);
  if (repro.scenario == "snapshot_roundtrip") {
    return CheckSnapshotRoundtrip(repro);
  }
  if (repro.scenario == "lookup_service") return CheckLookupService(repro);
  if (repro.scenario == "mutable_index") return CheckMutableIndex(repro);
  if (repro.scenario == "sharded_lookup") return CheckShardedLookup(repro);
  if (repro.scenario == "filtered_lookup") return CheckFilteredLookup(repro);
  if (repro.scenario == "wire_parser") return CheckWireParser(repro);
  if (repro.scenario == "recall") return CheckRecall(repro);
  if (repro.scenario == "kernel_diff") return CheckKernelDiff(repro);
  return Status::Invalid("unknown fuzz scenario: " + repro.scenario);
}

Result<FuzzReport> RunFuzz(const FuzzOptions& options) {
  std::vector<std::string> scenarios;
  if (options.scenario == "all") {
    scenarios = AllScenarios();
  } else {
    std::vector<std::string> known = AllScenarios();
    if (std::find(known.begin(), known.end(), options.scenario) == known.end()) {
      return Status::Invalid("unknown fuzz scenario: " + options.scenario);
    }
    scenarios.push_back(options.scenario);
  }

  FuzzReport report;
  for (uint64_t seed = options.start_seed;
       seed < options.start_seed + options.seeds; ++seed) {
    for (const std::string& scenario : scenarios) {
      Reproducer rp = GenerateCase(scenario, seed);
      SSJOIN_ASSIGN_OR_RETURN(CheckResult res, CheckCase(rp));
      ++report.cases_run;
      if (options.verbose) {
        std::fprintf(stderr, "[fuzz] %s seed=%llu: %s\n", scenario.c_str(),
                     static_cast<unsigned long long>(seed),
                     res.pass ? "ok" : res.detail.c_str());
      }
      if (res.pass) continue;

      ++report.failures;
      if (report.first_failure_detail.empty()) {
        report.first_failure_detail = res.detail;
      }
      if (options.shrink) {
        ShrinkStats shrink_stats;
        rp = ShrinkReproducer(
            rp,
            [](const Reproducer& candidate) {
              Result<CheckResult> r = CheckCase(candidate);
              return !r.ok() || !r->pass;
            },
            options.max_shrink_checks, &shrink_stats);
        if (options.verbose) {
          std::fprintf(stderr,
                       "[fuzz] shrunk to %zu+%zu records (%zu checks, "
                       "-%zu records, -%zu bytes)\n",
                       rp.r.size(), rp.s.size(), shrink_stats.checks_run,
                       shrink_stats.records_removed, shrink_stats.bytes_removed);
        }
      }
      if (!options.out_dir.empty()) {
        std::string path = options.out_dir + "/" + scenario + "-seed" +
                           std::to_string(seed) + ".repro";
        Status saved = SaveReproducerFile(rp, path);
        if (!saved.ok()) return saved;
        report.reproducer_paths.push_back(path);
      }
      if (report.failures >= options.max_failures) return report;
    }
  }
  return report;
}

}  // namespace ssjoin::fuzz
