#include "fuzz/shrink.h"

#include <algorithm>

namespace ssjoin::fuzz {

namespace {

struct Budget {
  size_t remaining;
  ShrinkStats* stats;

  bool Check(const StillFailsFn& still_fails, const Reproducer& candidate) {
    if (remaining == 0) return false;
    --remaining;
    if (stats != nullptr) ++stats->checks_run;
    return still_fails(candidate);
  }
};

/// One ddmin sweep over a string list: tries deleting [i, i+chunk) for
/// decreasing chunk sizes, keeping deletions that preserve the failure.
/// Returns true if anything was removed.
bool ShrinkList(Reproducer* repro, std::vector<std::string> Reproducer::*list,
                const StillFailsFn& still_fails, Budget* budget) {
  bool changed = false;
  for (size_t chunk = std::max<size_t>(1, (repro->*list).size() / 2); chunk >= 1;
       chunk /= 2) {
    for (size_t i = 0; i + chunk <= (repro->*list).size();) {
      Reproducer candidate = *repro;
      auto& v = candidate.*list;
      v.erase(v.begin() + static_cast<ptrdiff_t>(i),
              v.begin() + static_cast<ptrdiff_t>(i + chunk));
      if (budget->Check(still_fails, candidate)) {
        if (budget->stats != nullptr) budget->stats->records_removed += chunk;
        *repro = std::move(candidate);
        changed = true;
        // Do not advance: the next chunk shifted into position i.
      } else {
        i += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return changed;
}

/// ddmin over the bytes of every string in both lists.
bool ShrinkBytes(Reproducer* repro, const StillFailsFn& still_fails,
                 Budget* budget) {
  bool changed = false;
  for (std::vector<std::string> Reproducer::*list : {&Reproducer::r,
                                                     &Reproducer::s}) {
    for (size_t idx = 0; idx < (repro->*list).size(); ++idx) {
      for (size_t chunk = std::max<size_t>(1, (repro->*list)[idx].size() / 2);
           chunk >= 1; chunk /= 2) {
        for (size_t i = 0; i + chunk <= (repro->*list)[idx].size();) {
          Reproducer candidate = *repro;
          std::string& s = (candidate.*list)[idx];
          s.erase(i, chunk);
          if (budget->Check(still_fails, candidate)) {
            if (budget->stats != nullptr) budget->stats->bytes_removed += chunk;
            *repro = std::move(candidate);
            changed = true;
          } else {
            i += chunk;
          }
        }
        if (chunk == 1) break;
      }
    }
  }
  return changed;
}

}  // namespace

Reproducer ShrinkReproducer(Reproducer repro, const StillFailsFn& still_fails,
                            size_t max_checks, ShrinkStats* stats) {
  Budget budget{max_checks, stats};
  // Iterate record- and byte-level passes to a fixed point: removing bytes
  // can make whole records removable and vice versa.
  bool changed = true;
  while (changed && budget.remaining > 0) {
    changed = false;
    changed |= ShrinkList(&repro, &Reproducer::r, still_fails, &budget);
    changed |= ShrinkList(&repro, &Reproducer::s, still_fails, &budget);
    changed |= ShrinkBytes(&repro, still_fails, &budget);
  }
  return repro;
}

}  // namespace ssjoin::fuzz
