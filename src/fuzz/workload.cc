#include "fuzz/workload.h"

#include <cstddef>

namespace ssjoin::fuzz {

namespace {

// Intentionally tiny alphabet plus a space so that word tokenizers see
// multi-token strings and q-gram collisions across records are common.
constexpr char kAlphabet[] = "abcd ";
constexpr size_t kAlphabetSize = sizeof(kAlphabet) - 1;

char NormalChar(Rng* rng) {
  return kAlphabet[rng->Uniform(kAlphabetSize)];
}

}  // namespace

std::string GenerateString(Rng* rng, const WorkloadOptions& opts) {
  double roll = rng->NextDouble();
  if (roll < opts.p_empty) return std::string();
  roll -= opts.p_empty;
  if (roll < opts.p_short) {
    std::string s;
    size_t len = 1 + rng->Uniform(3);
    for (size_t i = 0; i < len; ++i) s.push_back(NormalChar(rng));
    return s;
  }
  roll -= opts.p_short;
  if (roll < opts.p_repeated_char) {
    size_t len = 1 + rng->Uniform(opts.max_length);
    return std::string(len, NormalChar(rng));
  }
  roll -= opts.p_repeated_char;
  if (roll < opts.p_high_byte) {
    std::string s;
    size_t len = 1 + rng->Uniform(opts.max_length);
    for (size_t i = 0; i < len; ++i) {
      if (rng->Bernoulli(0.2)) {
        s.push_back(' ');
      } else {
        s.push_back(static_cast<char>(0x80 + rng->Uniform(0x80)));
      }
    }
    return s;
  }
  std::string s;
  size_t len = 1 + rng->Uniform(opts.max_length);
  for (size_t i = 0; i < len; ++i) s.push_back(NormalChar(rng));
  return s;
}

std::string MutateString(Rng* rng, const std::string& s) {
  std::string out = s;
  switch (rng->Uniform(3)) {
    case 0: {  // insert
      size_t pos = rng->Uniform(out.size() + 1);
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos), NormalChar(rng));
      break;
    }
    case 1: {  // delete
      if (out.empty()) break;
      out.erase(out.begin() + static_cast<ptrdiff_t>(rng->Uniform(out.size())));
      break;
    }
    default: {  // substitute
      if (out.empty()) break;
      out[rng->Uniform(out.size())] = NormalChar(rng);
      break;
    }
  }
  return out;
}

std::vector<std::string> GenerateStrings(Rng* rng, const WorkloadOptions& opts) {
  size_t n = 1 + rng->Uniform(opts.max_records);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!out.empty() && rng->Bernoulli(opts.p_duplicate)) {
      const std::string& base = out[rng->Uniform(out.size())];
      out.push_back(rng->Bernoulli(0.5) ? base : MutateString(rng, base));
    } else {
      out.push_back(GenerateString(rng, opts));
    }
  }
  return out;
}

}  // namespace ssjoin::fuzz
