#ifndef SSJOIN_SIM_SOUNDEX_H_
#define SSJOIN_SIM_SOUNDEX_H_

#include <string>
#include <string_view>

namespace ssjoin::sim {

/// \brief American Soundex code of a word: an uppercase letter followed by
/// three digits ("Robert" -> "R163"). Non-alphabetic characters are ignored;
/// an input with no letters yields "0000". The paper lists soundex as one of
/// the similarity notions SSJoin supports (two names match if their codes
/// are equal, i.e. the overlap of their singleton code sets is 1).
std::string Soundex(std::string_view word);

/// \brief True iff the two words have equal Soundex codes.
bool SoundexEqual(std::string_view a, std::string_view b);

}  // namespace ssjoin::sim

#endif  // SSJOIN_SIM_SOUNDEX_H_
