#ifndef SSJOIN_SIM_SET_OVERLAP_H_
#define SSJOIN_SIM_SET_OVERLAP_H_

#include <initializer_list>
#include <span>
#include <vector>

#include "text/dictionary.h"
#include "text/weights.h"

namespace ssjoin::sim {

/// \brief Sorts and deduplicates element ids in place, producing the
/// canonical set representation expected by the overlap functions below.
/// (After TokenDictionary ordinal encoding, duplicates cannot occur within a
/// document, but arbitrary callers may pass raw id lists.)
void Canonicalize(std::vector<text::TokenId>* set);

/// \brief Weighted overlap `wt(s1 ∩ s2)` of two canonical (sorted, unique)
/// sets (Section 2: Overlap(s1, s2)).
double WeightedOverlap(std::span<const text::TokenId> s1,
                       std::span<const text::TokenId> s2,
                       const text::WeightProvider& weights);

/// \brief Unweighted overlap |s1 ∩ s2| of two canonical sets.
size_t OverlapCount(std::span<const text::TokenId> s1,
                    std::span<const text::TokenId> s2);

/// \brief Jaccard containment `JC(s1, s2) = wt(s1 ∩ s2) / wt(s1)`
/// (Definition 5.1). Empty s1 yields 1 by convention (it is fully contained).
double JaccardContainment(std::span<const text::TokenId> s1,
                          std::span<const text::TokenId> s2,
                          const text::WeightProvider& weights);

/// \brief Jaccard resemblance `JR(s1, s2) = wt(s1 ∩ s2) / wt(s1 ∪ s2)`
/// (Definition 5.2), multiset union semantics via ordinal encoding.
/// Two empty sets resemble fully (1).
double JaccardResemblance(std::span<const text::TokenId> s1,
                          std::span<const text::TokenId> s2,
                          const text::WeightProvider& weights);

/// \brief Dice coefficient `2 * wt(s1 ∩ s2) / (wt(s1) + wt(s2))`.
double DiceCoefficient(std::span<const text::TokenId> s1,
                       std::span<const text::TokenId> s2,
                       const text::WeightProvider& weights);

/// \brief Cosine similarity with per-element weights interpreted as squared
/// vector components: `cos(s1, s2) = wt(s1 ∩ s2) / sqrt(wt(s1) * wt(s2))`.
/// With `w(t) = idf(t)^2` this is the classic tf-idf cosine for binary
/// term vectors. Empty sets have similarity 0 (1 if both empty).
double CosineSimilarity(std::span<const text::TokenId> s1,
                        std::span<const text::TokenId> s2,
                        const text::WeightProvider& weights);

/// \brief Hamming distance between equal-length strings: number of positions
/// where they differ. If lengths differ, each position beyond the shorter
/// length counts as a mismatch.
size_t HammingDistance(std::string_view a, std::string_view b);

/// \name Braced-list conveniences
/// `std::span` cannot be constructed from a braced initializer list before
/// C++26, so small literal sets in tests and examples route through these.
/// @{
namespace detail {
inline std::span<const text::TokenId> AsSpan(
    std::initializer_list<text::TokenId> s) {
  return {s.begin(), s.size()};
}
}  // namespace detail

inline double WeightedOverlap(std::initializer_list<text::TokenId> s1,
                              std::initializer_list<text::TokenId> s2,
                              const text::WeightProvider& weights) {
  return WeightedOverlap(detail::AsSpan(s1), detail::AsSpan(s2), weights);
}
inline size_t OverlapCount(std::initializer_list<text::TokenId> s1,
                           std::initializer_list<text::TokenId> s2) {
  return OverlapCount(detail::AsSpan(s1), detail::AsSpan(s2));
}
inline double JaccardContainment(std::initializer_list<text::TokenId> s1,
                                 std::initializer_list<text::TokenId> s2,
                                 const text::WeightProvider& weights) {
  return JaccardContainment(detail::AsSpan(s1), detail::AsSpan(s2), weights);
}
inline double JaccardResemblance(std::initializer_list<text::TokenId> s1,
                                 std::initializer_list<text::TokenId> s2,
                                 const text::WeightProvider& weights) {
  return JaccardResemblance(detail::AsSpan(s1), detail::AsSpan(s2), weights);
}
inline double DiceCoefficient(std::initializer_list<text::TokenId> s1,
                              std::initializer_list<text::TokenId> s2,
                              const text::WeightProvider& weights) {
  return DiceCoefficient(detail::AsSpan(s1), detail::AsSpan(s2), weights);
}
inline double CosineSimilarity(std::initializer_list<text::TokenId> s1,
                               std::initializer_list<text::TokenId> s2,
                               const text::WeightProvider& weights) {
  return CosineSimilarity(detail::AsSpan(s1), detail::AsSpan(s2), weights);
}
/// @}

}  // namespace ssjoin::sim

#endif  // SSJOIN_SIM_SET_OVERLAP_H_
