#include "sim/jaro.h"

#include <algorithm>
#include <vector>

namespace ssjoin::sim {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t window = std::max(a.size(), b.size()) / 2;
  window = window > 0 ? window - 1 : 0;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Transpositions: matched characters out of order, halved.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) + m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale, size_t max_prefix) {
  double jaro = JaroSimilarity(a, b);
  size_t limit = std::min({max_prefix, a.size(), b.size(), size_t{4}});
  size_t prefix = 0;
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

}  // namespace ssjoin::sim
