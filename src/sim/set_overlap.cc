#include "sim/set_overlap.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "kernels/kernels.h"

namespace ssjoin::sim {

void Canonicalize(std::vector<text::TokenId>* set) {
  std::sort(set->begin(), set->end());
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

double WeightedOverlap(std::span<const text::TokenId> s1,
                       std::span<const text::TokenId> s2,
                       const text::WeightProvider& weights) {
  // The WeightProvider is a virtual interface, so the kernel collects the
  // matched tokens first (vectorizable) and the provider is consulted once
  // per match, still in ascending token order — the same accumulation order
  // as a fused merge, hence the same floating-point sum.
  thread_local std::vector<text::TokenId> matched;
  matched.resize(std::min(s1.size(), s2.size()));
  const size_t n = kernels::IntersectTokens(s1, s2, matched.data());
  double overlap = 0.0;
  for (size_t k = 0; k < n; ++k) overlap += weights.Weight(matched[k]);
  return overlap;
}

size_t OverlapCount(std::span<const text::TokenId> s1,
                    std::span<const text::TokenId> s2) {
  return kernels::IntersectCount(s1, s2);
}

double JaccardContainment(std::span<const text::TokenId> s1,
                          std::span<const text::TokenId> s2,
                          const text::WeightProvider& weights) {
  double w1 = weights.SetWeight(s1);
  if (w1 == 0.0) return 1.0;
  return WeightedOverlap(s1, s2, weights) / w1;
}

double JaccardResemblance(std::span<const text::TokenId> s1,
                          std::span<const text::TokenId> s2,
                          const text::WeightProvider& weights) {
  double w1 = weights.SetWeight(s1);
  double w2 = weights.SetWeight(s2);
  double inter = WeightedOverlap(s1, s2, weights);
  double uni = w1 + w2 - inter;
  if (uni == 0.0) return 1.0;
  return inter / uni;
}

double DiceCoefficient(std::span<const text::TokenId> s1,
                       std::span<const text::TokenId> s2,
                       const text::WeightProvider& weights) {
  double w1 = weights.SetWeight(s1);
  double w2 = weights.SetWeight(s2);
  if (w1 + w2 == 0.0) return 1.0;
  return 2.0 * WeightedOverlap(s1, s2, weights) / (w1 + w2);
}

double CosineSimilarity(std::span<const text::TokenId> s1,
                        std::span<const text::TokenId> s2,
                        const text::WeightProvider& weights) {
  double w1 = weights.SetWeight(s1);
  double w2 = weights.SetWeight(s2);
  if (w1 == 0.0 && w2 == 0.0) return 1.0;
  if (w1 == 0.0 || w2 == 0.0) return 0.0;
  return WeightedOverlap(s1, s2, weights) / std::sqrt(w1 * w2);
}

size_t HammingDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  size_t dist = b.size() - a.size();
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++dist;
  }
  return dist;
}

}  // namespace ssjoin::sim
