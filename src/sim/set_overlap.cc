#include "sim/set_overlap.h"

#include <algorithm>
#include <cmath>
#include <string_view>

namespace ssjoin::sim {

void Canonicalize(std::vector<text::TokenId>* set) {
  std::sort(set->begin(), set->end());
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

double WeightedOverlap(std::span<const text::TokenId> s1,
                       std::span<const text::TokenId> s2,
                       const text::WeightProvider& weights) {
  double overlap = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < s1.size() && j < s2.size()) {
    if (s1[i] < s2[j]) {
      ++i;
    } else if (s2[j] < s1[i]) {
      ++j;
    } else {
      overlap += weights.Weight(s1[i]);
      ++i;
      ++j;
    }
  }
  return overlap;
}

size_t OverlapCount(std::span<const text::TokenId> s1,
                    std::span<const text::TokenId> s2) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < s1.size() && j < s2.size()) {
    if (s1[i] < s2[j]) {
      ++i;
    } else if (s2[j] < s1[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double JaccardContainment(std::span<const text::TokenId> s1,
                          std::span<const text::TokenId> s2,
                          const text::WeightProvider& weights) {
  double w1 = weights.SetWeight(s1);
  if (w1 == 0.0) return 1.0;
  return WeightedOverlap(s1, s2, weights) / w1;
}

double JaccardResemblance(std::span<const text::TokenId> s1,
                          std::span<const text::TokenId> s2,
                          const text::WeightProvider& weights) {
  double w1 = weights.SetWeight(s1);
  double w2 = weights.SetWeight(s2);
  double inter = WeightedOverlap(s1, s2, weights);
  double uni = w1 + w2 - inter;
  if (uni == 0.0) return 1.0;
  return inter / uni;
}

double DiceCoefficient(std::span<const text::TokenId> s1,
                       std::span<const text::TokenId> s2,
                       const text::WeightProvider& weights) {
  double w1 = weights.SetWeight(s1);
  double w2 = weights.SetWeight(s2);
  if (w1 + w2 == 0.0) return 1.0;
  return 2.0 * WeightedOverlap(s1, s2, weights) / (w1 + w2);
}

double CosineSimilarity(std::span<const text::TokenId> s1,
                        std::span<const text::TokenId> s2,
                        const text::WeightProvider& weights) {
  double w1 = weights.SetWeight(s1);
  double w2 = weights.SetWeight(s2);
  if (w1 == 0.0 && w2 == 0.0) return 1.0;
  if (w1 == 0.0 || w2 == 0.0) return 0.0;
  return WeightedOverlap(s1, s2, weights) / std::sqrt(w1 * w2);
}

size_t HammingDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  size_t dist = b.size() - a.size();
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++dist;
  }
  return dist;
}

}  // namespace ssjoin::sim
