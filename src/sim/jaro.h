#ifndef SSJOIN_SIM_JARO_H_
#define SSJOIN_SIM_JARO_H_

#include <string_view>

namespace ssjoin::sim {

/// \brief Jaro similarity in [0, 1]: based on the number of characters
/// matching within a window of half the longer string's length and the
/// number of transpositions among them. A staple of record-linkage name
/// matching (the application domain of the paper's §1); usable as the final
/// UDF filter of Figure 2 or as the token matcher inside the GES expansion.
double JaroSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro-Winkler similarity: Jaro boosted by up to `max_prefix` (<= 4)
/// characters of common prefix with scaling factor `prefix_scale`
/// (Winkler's standard 0.1).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1, size_t max_prefix = 4);

}  // namespace ssjoin::sim

#endif  // SSJOIN_SIM_JARO_H_
