#ifndef SSJOIN_SIM_GES_H_
#define SSJOIN_SIM_GES_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ssjoin::sim {

/// Weight of a token string (IDF or unit). Must be positive.
using TokenWeightFn = std::function<double(std::string_view)>;

/// \brief Transformation cost `tc(a, b)` of Definition 6: the minimum-cost
/// sequence of token-level edits transforming token sequence `a` into `b`,
/// where replacing token t1 by t2 costs `ed(t1, t2) * wt(t1)` (ed = edit
/// distance normalized by max token length) and inserting/deleting token t
/// costs `wt(t)`.
double TransformationCost(const std::vector<std::string>& a,
                          const std::vector<std::string>& b,
                          const TokenWeightFn& weight);

/// \brief Generalized edit similarity (Definition 6):
/// `GES(a, b) = 1 - min(tc(a, b) / wt(Set(a)), 1)`.
/// An empty `a` has GES 1 against an empty `b` and 0 otherwise.
double GeneralizedEditSimilarity(const std::vector<std::string>& a,
                                 const std::vector<std::string>& b,
                                 const TokenWeightFn& weight);

/// \brief Normalized token edit distance used inside GES:
/// `ed(t1, t2) = ED(t1, t2) / max(|t1|, |t2|)` (0 for two empty tokens).
double NormalizedEditDistance(std::string_view t1, std::string_view t2);

}  // namespace ssjoin::sim

#endif  // SSJOIN_SIM_GES_H_
