#include "sim/soundex.h"

#include <cctype>

namespace ssjoin::sim {

namespace {

/// Soundex digit of a letter, or '0' for vowels and non-coding letters
/// (a, e, i, o, u, y, h, w).
char SoundexDigit(char upper) {
  switch (upper) {
    case 'B':
    case 'F':
    case 'P':
    case 'V':
      return '1';
    case 'C':
    case 'G':
    case 'J':
    case 'K':
    case 'Q':
    case 'S':
    case 'X':
    case 'Z':
      return '2';
    case 'D':
    case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M':
    case 'N':
      return '5';
    case 'R':
      return '6';
    default:
      return '0';
  }
}

bool IsHW(char upper) { return upper == 'H' || upper == 'W'; }

}  // namespace

std::string Soundex(std::string_view word) {
  // Find the first letter.
  size_t first = 0;
  while (first < word.size() && !std::isalpha(static_cast<unsigned char>(word[first]))) {
    ++first;
  }
  if (first == word.size()) return "0000";

  char first_letter = static_cast<char>(std::toupper(static_cast<unsigned char>(word[first])));
  std::string code(1, first_letter);
  char prev_digit = SoundexDigit(first_letter);

  for (size_t i = first + 1; i < word.size() && code.size() < 4; ++i) {
    unsigned char raw = static_cast<unsigned char>(word[i]);
    if (!std::isalpha(raw)) continue;
    char upper = static_cast<char>(std::toupper(raw));
    char digit = SoundexDigit(upper);
    if (digit != '0' && digit != prev_digit) {
      code.push_back(digit);
    }
    // 'H' and 'W' are transparent: letters separated by them act adjacent.
    // Vowels reset the previous digit so repeats across vowels are coded.
    if (!IsHW(upper)) prev_digit = digit;
  }
  code.append(4 - code.size(), '0');
  return code;
}

bool SoundexEqual(std::string_view a, std::string_view b) {
  return Soundex(a) == Soundex(b);
}

}  // namespace ssjoin::sim
