#ifndef SSJOIN_SIM_EDIT_DISTANCE_H_
#define SSJOIN_SIM_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace ssjoin::sim {

/// \brief Levenshtein edit distance (Definition 2): minimum number of
/// character insertions, deletions and substitutions transforming `a` into
/// `b`. O(|a|*|b|) time, O(min) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// \brief Banded edit distance with cutoff: returns the exact edit distance
/// if it is <= `k`, otherwise any value > `k` (specifically k+1).
/// O((2k+1) * min(|a|,|b|)) time — this is the verifier used after the
/// SSJoin candidate generation, where k is small.
size_t EditDistanceBounded(std::string_view a, std::string_view b, size_t k);

/// \brief True iff EditDistance(a, b) <= k, using the banded algorithm.
bool EditDistanceAtMost(std::string_view a, std::string_view b, size_t k);

/// \brief Edit similarity (Definition 2):
/// `ES(a, b) = 1 - ED(a, b) / max(|a|, |b|)`. Two empty strings have
/// similarity 1.
double EditSimilarity(std::string_view a, std::string_view b);

/// \brief True iff ES(a, b) >= alpha, computed with the banded verifier
/// (ED <= floor((1 - alpha) * max(|a|,|b|))).
bool EditSimilarityAtLeast(std::string_view a, std::string_view b, double alpha);

}  // namespace ssjoin::sim

#endif  // SSJOIN_SIM_EDIT_DISTANCE_H_
