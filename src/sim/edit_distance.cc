#include "sim/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace ssjoin::sim {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  // One-row DP over the shorter string.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];  // D[i-1][j]
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t EditDistanceBounded(std::string_view a, std::string_view b, size_t k) {
  if (a.size() < b.size()) std::swap(a, b);
  // Length difference alone is a lower bound on the distance.
  if (a.size() - b.size() > k) return k + 1;
  if (b.empty()) return a.size();

  const size_t kInf = std::numeric_limits<size_t>::max() / 2;
  // Band of half-width k around the diagonal, over the shorter string b.
  std::vector<size_t> row(b.size() + 1, kInf);
  std::vector<size_t> prev(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), k); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t lo = (i > k) ? i - k : 0;
    size_t hi = std::min(b.size(), i + k);
    if (lo > hi) return k + 1;
    std::fill(row.begin(), row.end(), kInf);
    if (lo == 0) row[0] = i;
    size_t row_min = kInf;
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t best = prev[j - 1] + cost;  // substitute/match
      if (prev[j] != kInf) best = std::min(best, prev[j] + 1);      // delete from a
      if (row[j - 1] != kInf) best = std::min(best, row[j - 1] + 1);  // insert into a
      row[j] = best;
      row_min = std::min(row_min, best);
    }
    if (lo == 0) row_min = std::min(row_min, row[0]);
    if (row_min > k) return k + 1;  // the whole band exceeded k: early exit
    std::swap(row, prev);
  }
  return std::min(prev[b.size()], k + 1);
}

bool EditDistanceAtMost(std::string_view a, std::string_view b, size_t k) {
  return EditDistanceBounded(a, b, k) <= k;
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) / static_cast<double>(max_len);
}

bool EditSimilarityAtLeast(std::string_view a, std::string_view b, double alpha) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return true;
  if (alpha <= 0.0) return true;
  double allowed = (1.0 - alpha) * static_cast<double>(max_len);
  // ED is integral: ED <= floor(allowed + epsilon guards fp noise).
  size_t k = static_cast<size_t>(std::floor(allowed + 1e-9));
  return EditDistanceAtMost(a, b, k);
}

}  // namespace ssjoin::sim
