#include "sim/ges.h"

#include <algorithm>
#include <vector>

#include "sim/edit_distance.h"

namespace ssjoin::sim {

double NormalizedEditDistance(std::string_view t1, std::string_view t2) {
  size_t max_len = std::max(t1.size(), t2.size());
  if (max_len == 0) return 0.0;
  return static_cast<double>(EditDistance(t1, t2)) / static_cast<double>(max_len);
}

double TransformationCost(const std::vector<std::string>& a,
                          const std::vector<std::string>& b,
                          const TokenWeightFn& weight) {
  const size_t m = a.size();
  const size_t n = b.size();
  // Sequence DP, O(m*n) cells, each cell evaluating one token edit distance.
  std::vector<double> prev(n + 1);
  std::vector<double> row(n + 1);
  prev[0] = 0.0;
  for (size_t j = 1; j <= n; ++j) prev[j] = prev[j - 1] + weight(b[j - 1]);
  for (size_t i = 1; i <= m; ++i) {
    const double wa = weight(a[i - 1]);
    row[0] = prev[0] + wa;  // delete a[i-1]
    for (size_t j = 1; j <= n; ++j) {
      double del = prev[j] + wa;                 // delete a[i-1]
      double ins = row[j - 1] + weight(b[j - 1]);  // insert b[j-1]
      double rep = prev[j - 1] + NormalizedEditDistance(a[i - 1], b[j - 1]) * wa;
      row[j] = std::min({del, ins, rep});
    }
    std::swap(prev, row);
  }
  return prev[n];
}

double GeneralizedEditSimilarity(const std::vector<std::string>& a,
                                 const std::vector<std::string>& b,
                                 const TokenWeightFn& weight) {
  double wt_a = 0.0;
  for (const std::string& t : a) wt_a += weight(t);
  if (wt_a == 0.0) {
    // No weight to normalize by: identical (both empty) means similarity 1.
    return b.empty() ? 1.0 : 0.0;
  }
  double tc = TransformationCost(a, b, weight);
  double normalized = tc / wt_a;
  if (normalized > 1.0) normalized = 1.0;
  return 1.0 - normalized;
}

}  // namespace ssjoin::sim
