#include "shard/wire_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ssjoin::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline` for poll(); -1 when unbounded, 0 when
/// already past (poll returns immediately and we report timeout).
int PollBudget(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;  // re-check the clock periodically
  return static_cast<int>(left.count());
}

Status TimeoutError(const char* what) {
  return Status::DeadlineExceeded(std::string("wire ") + what +
                                  " timed out");
}

Status SocketError(const char* what) {
  return Status::IOError(std::string("wire ") + what + " failed: " +
                         std::strerror(errno));
}

}  // namespace

WireClient::~WireClient() { Close(); }

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
  }
  return *this;
}

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Result<WireClient> WireClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::Invalid("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    return Status::Unavailable("cannot connect to '" + socket_path +
                               "': " + std::strerror(saved));
  }
  return WireClient(fd);
}

Result<std::string> WireClient::Call(std::string_view line,
                                     std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::Unavailable("wire client is not connected");
  bool has_deadline = timeout.count() > 0;
  Clock::time_point deadline = Clock::now() + timeout;

  std::string out(line);
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    pollfd pfd{fd_, POLLOUT, 0};
    int pr = ::poll(&pfd, 1, PollBudget(has_deadline, deadline));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return SocketError("poll");
    }
    if (pr == 0) return TimeoutError("write");
    ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SocketError("write");
    }
    if (n == 0) return Status::IOError("wire peer closed during write");
    off += static_cast<size_t>(n);
  }

  for (;;) {
    size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string result = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return result;
    }
    pollfd pfd{fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, PollBudget(has_deadline, deadline));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return SocketError("poll");
    }
    if (pr == 0) return TimeoutError("read");
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return SocketError("read");
    }
    if (n == 0) return Status::IOError("wire peer closed mid-response");
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> WireClient::ReadRaw(size_t n,
                                        std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::Unavailable("wire client is not connected");
  bool has_deadline = timeout.count() > 0;
  Clock::time_point deadline = Clock::now() + timeout;
  while (buf_.size() < n) {
    pollfd pfd{fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, PollBudget(has_deadline, deadline));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return SocketError("poll");
    }
    if (pr == 0) return TimeoutError("raw read");
    char chunk[65536];
    ssize_t r = ::read(fd_, chunk, sizeof(chunk));
    if (r < 0) {
      if (errno == EINTR) continue;
      return SocketError("read");
    }
    if (r == 0) return Status::IOError("wire peer closed mid-body");
    buf_.append(chunk, static_cast<size_t>(r));
  }
  std::string result = buf_.substr(0, n);
  buf_.erase(0, n);
  return result;
}

std::string FormatHexDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

Result<double> ParseHexDouble(std::string_view s) {
  // Accept exactly the shape FormatHexDouble ("%a") emits:
  // -?0x<hex>(.<hex>*)?p[+-]?<dec>. Bare strtod would also take "+1", "01",
  // " 1", decimal literals and "inf" — none of which a well-behaved shard
  // ever sends, so they indicate a corrupt or hostile peer and must fail
  // loudly instead of merging a garbage score.
  size_t i = 0;
  auto hex_digit = [&] {
    return i < s.size() && std::isxdigit(static_cast<unsigned char>(s[i]));
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (s.compare(i, 2, "0x") != 0) {
    return Status::Invalid("bad hex-float '" + std::string(s) + "'");
  }
  i += 2;
  if (!hex_digit()) {
    return Status::Invalid("bad hex-float '" + std::string(s) + "'");
  }
  while (hex_digit()) ++i;
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (hex_digit()) ++i;
  }
  if (i >= s.size() || s[i] != 'p') {
    return Status::Invalid("bad hex-float '" + std::string(s) + "'");
  }
  ++i;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  auto dec_digit = [&] {
    return i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]));
  };
  if (!dec_digit()) {
    return Status::Invalid("bad hex-float '" + std::string(s) + "'");
  }
  while (dec_digit()) ++i;
  if (i != s.size()) {
    return Status::Invalid("bad hex-float '" + std::string(s) + "'");
  }

  std::string z(s);
  char* end = nullptr;
  double v = std::strtod(z.c_str(), &end);
  if (end != z.c_str() + z.size() || !std::isfinite(v)) {
    return Status::Invalid("bad hex-float '" + z + "'");
  }
  return v;
}

std::string PackNetstrings(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    out += std::to_string(item.size());
    out.push_back(':');
    out += item;
    out.push_back(',');
  }
  return out;
}

Result<std::vector<std::string>> UnpackNetstrings(std::string_view s) {
  std::vector<std::string> items;
  size_t i = 0;
  while (i < s.size()) {
    size_t colon = s.find(':', i);
    if (colon == std::string_view::npos || colon == i ||
        colon - i > 19) {  // 19 digits > any sane length
      return Status::Invalid("malformed netstring length");
    }
    uint64_t len = 0;
    for (size_t j = i; j < colon; ++j) {
      char c = s[j];
      if (c < '0' || c > '9') return Status::Invalid("malformed netstring length");
      len = len * 10 + static_cast<uint64_t>(c - '0');
    }
    size_t body = colon + 1;
    if (body + len + 1 > s.size() || s[body + len] != ',') {
      return Status::Invalid("truncated netstring");
    }
    items.emplace_back(s.substr(body, len));
    i = body + len + 1;
  }
  return items;
}

}  // namespace ssjoin::shard
