#ifndef SSJOIN_SHARD_METRICS_H_
#define SSJOIN_SHARD_METRICS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace ssjoin::shard {

/// \brief Fan-out instrumentation shared by every scatter-gather front end
/// (the in-process ShardedLookupIndex and the multi-process Coordinator).
///
/// Value-owned per instance, mirrored into the global obs::Registry through
/// a provider callback under `shard.*` names — the same discipline
/// LookupService uses for `serve.*`.
struct ShardMetrics {
  std::atomic<uint64_t> lookups{0};           // scatter-gather lookups served
  std::atomic<uint64_t> fanouts{0};           // per-shard sub-lookups issued
  std::atomic<uint64_t> failed_lookups{0};    // lookups failed by a shard error
  std::atomic<uint64_t> deadline_rejects{0};  // budget exhausted at/after entry
  std::atomic<uint64_t> hedges{0};            // hedged retries issued
  std::atomic<uint64_t> hedge_wins{0};        // hedges that answered first
  std::atomic<uint64_t> stragglers{0};        // shards past the straggler bar
  std::atomic<uint64_t> degraded{0};          // partial (shard-down) responses
  obs::Histogram latency_us;                  // full scatter-gather wall time
  obs::Histogram slowest_us;                  // slowest shard per lookup
  obs::Histogram merge_us;                    // merge + truncate step
};

/// Appends the metrics as `shard.*` points (for a Registry provider).
void CollectShardMetrics(const ShardMetrics& m, uint32_t num_shards,
                         std::vector<obs::MetricPoint>* out);

}  // namespace ssjoin::shard

#endif  // SSJOIN_SHARD_METRICS_H_
