#include "shard/replication.h"

#include <filesystem>

#include "common/atomic_file.h"
#include "common/hash.h"
#include "index/manifest.h"

namespace ssjoin::shard {

namespace {

namespace fs = std::filesystem;

/// A fetched file name is leader-controlled input; confine it to a plain
/// basename so a compromised or confused leader cannot direct writes outside
/// the follower's directory.
bool SafeBasename(const std::string& name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

/// True when the local file exists and already hashes to `checksum`.
bool LocalSegmentCurrent(const std::string& path, uint64_t checksum) {
  std::string bytes;
  if (!common::ReadFile(path, &bytes).ok()) return false;
  return HashString(bytes) == checksum;
}

}  // namespace

Result<std::string> FileFetcher::Fetch(const std::string& name) {
  if (!SafeBasename(name)) {
    return Status::Invalid("refusing to fetch non-basename '" + name + "'");
  }
  std::string path = dir_ + "/" + name;
  if (!fs::exists(path)) {
    return Status::KeyError("leader has no file '" + name + "'");
  }
  std::string bytes;
  SSJOIN_RETURN_NOT_OK(common::ReadFile(path, &bytes));
  return bytes;
}

Result<SyncResult> SyncFromLeader(Fetcher& fetcher,
                                  const std::string& local_dir) {
  SSJOIN_ASSIGN_OR_RETURN(std::string manifest_bytes,
                          fetcher.Fetch(index::kManifestFileName));
  SSJOIN_ASSIGN_OR_RETURN(
      index::Manifest manifest,
      index::DecodeManifest(manifest_bytes, "fetched from leader"));

  SyncResult result;
  result.epoch = manifest.epoch;

  std::string local_manifest_path =
      local_dir + "/" + index::kManifestFileName;
  std::string local_manifest;
  if (common::ReadFile(local_manifest_path, &local_manifest).ok() &&
      local_manifest == manifest_bytes) {
    return result;  // byte-identical manifest: nothing to do
  }

  std::error_code ec;
  fs::create_directories(local_dir, ec);
  if (ec) {
    return Status::IOError("cannot create follower directory '" + local_dir +
                           "': " + ec.message());
  }

  for (const auto& seg : manifest.segments) {
    if (!SafeBasename(seg.file)) {
      return Status::IOError("leader manifest references unsafe name '" +
                             seg.file + "'");
    }
    std::string local_path = local_dir + "/" + seg.file;
    if (LocalSegmentCurrent(local_path, seg.checksum)) continue;
    SSJOIN_ASSIGN_OR_RETURN(std::string bytes, fetcher.Fetch(seg.file));
    if (HashString(bytes) != seg.checksum) {
      return Status::IOError("segment '" + seg.file +
                             "' fetched from leader fails its manifest "
                             "checksum; aborting sync");
    }
    SSJOIN_RETURN_NOT_OK(common::WriteFileAtomic(local_path, bytes));
    ++result.segments_fetched;
  }

  // Commit point: every referenced segment is verified on disk, so the new
  // manifest can become the follower's truth. A crash before this line
  // leaves the previous manifest serving its own (still complete) files.
  SSJOIN_RETURN_NOT_OK(
      common::WriteFileAtomic(local_manifest_path, manifest_bytes));
  result.updated = true;
  return result;
}

}  // namespace ssjoin::shard
