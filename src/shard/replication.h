#ifndef SSJOIN_SHARD_REPLICATION_H_
#define SSJOIN_SHARD_REPLICATION_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace ssjoin::shard {

/// \brief Transport for pulling a leader's durable files by basename.
///
/// Sealed-snapshot replication is transport-agnostic: the follower drives one
/// Fetcher, whether the bytes come off a local directory (FileFetcher, also
/// the unit-test double) or over the wire from a running shard server (the
/// `repl_fetch` op in tools/ssjoin_served.cc). Fetch returns the complete
/// file contents or a status (KeyError when the leader has no such file).
class Fetcher {
 public:
  virtual ~Fetcher() = default;
  virtual Result<std::string> Fetch(const std::string& name) = 0;
};

/// Reads the leader's files straight from a directory — deployments with a
/// shared filesystem, and every replication unit test.
class FileFetcher : public Fetcher {
 public:
  explicit FileFetcher(std::string dir) : dir_(std::move(dir)) {}
  Result<std::string> Fetch(const std::string& name) override;

 private:
  std::string dir_;
};

/// What one replication round did.
struct SyncResult {
  bool updated = false;        // a new manifest was committed locally
  uint64_t epoch = 0;          // epoch of the manifest now on local disk
  size_t segments_fetched = 0;  // segment files pulled this round
};

/// \brief One pull-based replication round: make `local_dir` serve the
/// leader's last *sealed* state.
///
/// Protocol (follower-driven, idempotent, crash-safe):
///   1. Fetch the leader's MANIFEST bytes. If they equal the local MANIFEST
///      byte-for-byte, the follower is current — done (updated=false).
///   2. Decode and validate the fetched manifest (magic, version, payload
///      checksum) *before* trusting any name inside it.
///   3. For every segment the manifest references and the follower is
///      missing (or holds with a mismatched checksum): fetch it, verify the
///      FNV checksum against the manifest entry, write it atomically. A
///      corrupt fetch fails the round and leaves the old state serving.
///   4. Only after every referenced segment is verified on disk, atomically
///      write the MANIFEST. The manifest is the commit point: a crash
///      anywhere earlier leaves the previous manifest (and its complete
///      segment set) intact.
///
/// The WAL is deliberately NOT replicated: followers serve at the leader's
/// last published *sealed* epoch, so unsealed tail mutations become visible
/// on the follower only after the leader's next Seal. Reopening the synced
/// directory (MutableFuzzyIndex::Open) starts a fresh empty WAL.
Result<SyncResult> SyncFromLeader(Fetcher& fetcher,
                                  const std::string& local_dir);

}  // namespace ssjoin::shard

#endif  // SSJOIN_SHARD_REPLICATION_H_
