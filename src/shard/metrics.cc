#include "shard/metrics.h"

namespace ssjoin::shard {

void CollectShardMetrics(const ShardMetrics& m, uint32_t num_shards,
                         std::vector<obs::MetricPoint>* out) {
  auto load = [](const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  out->push_back(obs::MetricPoint::FromGauge("shard.num_shards",
                                             static_cast<int64_t>(num_shards)));
  out->push_back(obs::MetricPoint::FromCounter("shard.lookups", load(m.lookups)));
  out->push_back(obs::MetricPoint::FromCounter("shard.fanouts", load(m.fanouts)));
  out->push_back(obs::MetricPoint::FromCounter("shard.failed_lookups",
                                               load(m.failed_lookups)));
  out->push_back(obs::MetricPoint::FromCounter("shard.deadline_rejects",
                                               load(m.deadline_rejects)));
  out->push_back(obs::MetricPoint::FromCounter("shard.hedges", load(m.hedges)));
  out->push_back(
      obs::MetricPoint::FromCounter("shard.hedge_wins", load(m.hedge_wins)));
  out->push_back(
      obs::MetricPoint::FromCounter("shard.stragglers", load(m.stragglers)));
  out->push_back(
      obs::MetricPoint::FromCounter("shard.degraded", load(m.degraded)));
  out->push_back(
      obs::MetricPoint::FromHistogram("shard.latency_us", m.latency_us));
  out->push_back(
      obs::MetricPoint::FromHistogram("shard.slowest_us", m.slowest_us));
  out->push_back(obs::MetricPoint::FromHistogram("shard.merge_us", m.merge_us));
}

}  // namespace ssjoin::shard
