#ifndef SSJOIN_SHARD_WIRE_CLIENT_H_
#define SSJOIN_SHARD_WIRE_CLIENT_H_

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ssjoin::shard {

/// \brief Client end of ssjoin_served's newline-delimited-JSON protocol over
/// a unix-domain socket: one request line out, one response line back.
///
/// Timeouts are absolute-budget style: every Call gets a deadline and poll()s
/// toward it, so a stalled server costs the caller at most the budget — the
/// coordinator's remaining-deadline propagation depends on this. A zero
/// timeout means block indefinitely (administrative calls).
class WireClient {
 public:
  WireClient() = default;
  ~WireClient();
  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  static Result<WireClient> Connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }

  /// Sends `line` (newline appended) and reads one response line (newline
  /// stripped). `timeout` bounds the whole round trip; zero = no bound.
  Result<std::string> Call(std::string_view line,
                           std::chrono::milliseconds timeout);

  /// Reads exactly `n` raw bytes — the body of a length-prefixed response
  /// (repl_fetch). Bytes already buffered from line reads are consumed first.
  Result<std::string> ReadRaw(size_t n, std::chrono::milliseconds timeout);

 private:
  explicit WireClient(int fd) : fd_(fd) {}
  void Close();

  int fd_ = -1;
  std::string buf_;  // bytes read past the last returned line
};

/// \name Exact-value encodings of the shard wire protocol
///
/// Similarities cross the wire as C99 hex-float literals ("%a"), which
/// round-trip IEEE doubles exactly — the multi-process tier inherits the
/// in-process bit-identity contract only because no decimal rounding ever
/// touches a score. Document values cross as concatenated netstrings
/// ("<len>:<bytes>,"), immune to every byte the values may contain.
/// @{
std::string FormatHexDouble(double v);
Result<double> ParseHexDouble(std::string_view s);
std::string PackNetstrings(const std::vector<std::string>& items);
Result<std::vector<std::string>> UnpackNetstrings(std::string_view s);
/// @}

}  // namespace ssjoin::shard

#endif  // SSJOIN_SHARD_WIRE_CLIENT_H_
