#include "shard/sharded_index.h"

#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <thread>

#include "common/atomic_file.h"
#include "common/string_util.h"

namespace ssjoin::shard {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr char kShardsFileName[] = "SHARDS";

std::string ShardDir(const std::string& root, uint32_t i) {
  return root + "/shard-" + std::to_string(i);
}

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count());
}

index::MutableIndexOptions ShardIndexOptions(const ShardedIndexOptions& options,
                                             uint32_t i) {
  index::MutableIndexOptions mopts;
  mopts.match = options.match;
  mopts.seal_threshold = options.seal_threshold;
  mopts.max_generations = options.max_generations;
  // Background maintenance would make epoch numbering timing-dependent per
  // shard; the sharded tier keeps maintenance inline for the same
  // determinism reasons the differential tests rely on.
  mopts.background_maintenance = false;
  if (!options.data_dir.empty()) mopts.data_dir = ShardDir(options.data_dir, i);
  return mopts;
}

}  // namespace

ShardedLookupIndex::ShardedLookupIndex(const ShardedIndexOptions& options)
    : options_(options), num_shards_(options.num_shards) {}

Result<std::unique_ptr<ShardedLookupIndex>> ShardedLookupIndex::Create(
    const ShardedIndexOptions& options) {
  if (options.num_shards == 0) {
    return Status::Invalid("num_shards must be at least 1");
  }
  std::unique_ptr<ShardedLookupIndex> sharded(new ShardedLookupIndex(options));
  if (!options.data_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.data_dir, ec);
    if (ec) {
      return Status::IOError("cannot create data directory '" +
                             options.data_dir + "': " + ec.message());
    }
    std::string shards_path = options.data_dir + "/" + kShardsFileName;
    if (fs::exists(shards_path)) {
      return Status::Invalid("data directory '" + options.data_dir +
                             "' is already sharded; use Open");
    }
    SSJOIN_RETURN_NOT_OK(common::WriteFileAtomic(
        shards_path, std::to_string(options.num_shards) + "\n"));
  }
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                            index::MutableFuzzyIndex::Create(
                                ShardIndexOptions(options, i)));
    SSJOIN_ASSIGN_OR_RETURN(
        std::unique_ptr<serve::LookupService> service,
        serve::LookupService::Create(std::move(index), options.service));
    sharded->services_.push_back(std::move(service));
  }
  {
    std::lock_guard<std::mutex> lock(sharded->mutation_mu_);
    SSJOIN_RETURN_NOT_OK(sharded->RebuildGlobalStatsLocked());
  }
  sharded->provider_id_.store(obs::Registry::Global().RegisterProvider(
      [s = sharded.get()](std::vector<obs::MetricPoint>* out) {
        CollectShardMetrics(s->metrics_, s->num_shards_, out);
      }));
  return sharded;
}

Result<std::unique_ptr<ShardedLookupIndex>> ShardedLookupIndex::Open(
    const ShardedIndexOptions& options) {
  if (options.data_dir.empty()) {
    return Status::Invalid("Open requires a data directory");
  }
  std::string shards_path = options.data_dir + "/" + kShardsFileName;
  std::string contents;
  SSJOIN_RETURN_NOT_OK(common::ReadFile(shards_path, &contents));
  while (!contents.empty() &&
         (contents.back() == '\n' || contents.back() == '\r')) {
    contents.pop_back();
  }
  SSJOIN_ASSIGN_OR_RETURN(uint64_t persisted, ParseUint64(contents));
  if (persisted == 0) {
    return Status::IOError("SHARDS file holds a zero shard count");
  }
  ShardedIndexOptions effective = options;
  if (options.num_shards == 0) {
    effective.num_shards = static_cast<uint32_t>(persisted);
  } else if (options.num_shards != persisted) {
    // Re-sharding is not supported: documents live where ShardOf(id, N) put
    // them, so opening with a different N would silently misroute.
    return Status::Invalid("data directory is sharded " +
                           std::to_string(persisted) + " ways, not " +
                           std::to_string(options.num_shards));
  }
  std::unique_ptr<ShardedLookupIndex> sharded(new ShardedLookupIndex(effective));
  for (uint32_t i = 0; i < effective.num_shards; ++i) {
    SSJOIN_ASSIGN_OR_RETURN(
        std::unique_ptr<index::MutableFuzzyIndex> index,
        index::MutableFuzzyIndex::Open(ShardIndexOptions(effective, i)));
    SSJOIN_ASSIGN_OR_RETURN(
        std::unique_ptr<serve::LookupService> service,
        serve::LookupService::Create(std::move(index), effective.service));
    sharded->services_.push_back(std::move(service));
  }
  {
    std::lock_guard<std::mutex> lock(sharded->mutation_mu_);
    SSJOIN_RETURN_NOT_OK(sharded->RebuildGlobalStatsLocked());
  }
  sharded->provider_id_.store(obs::Registry::Global().RegisterProvider(
      [s = sharded.get()](std::vector<obs::MetricPoint>* out) {
        CollectShardMetrics(s->metrics_, s->num_shards_, out);
      }));
  return sharded;
}

ShardedLookupIndex::~ShardedLookupIndex() {
  if (uint64_t pid = provider_id_.exchange(0); pid != 0) {
    obs::Registry::Global().UnregisterProvider(pid);
  }
}

Status ShardedLookupIndex::RebuildGlobalStatsLocked() {
  // Global statistics are in-memory only; after Create/Open they are
  // re-derived from the one durable source of truth — the shards' live
  // document sets — in ascending doc_id order so dictionary interning is
  // deterministic across runs.
  std::vector<std::pair<uint64_t, std::string>> all;
  for (const auto& service : services_) {
    std::vector<std::pair<uint64_t, std::string>> docs = service->LiveDocs();
    all.insert(all.end(), std::make_move_iterator(docs.begin()),
               std::make_move_iterator(docs.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> values;
  values.reserve(all.size());
  for (auto& [id, value] : all) values.push_back(std::move(value));
  for (const auto& service : services_) {
    SSJOIN_RETURN_NOT_OK(service->ResetGlobalStats(values));
  }
  return Status::OK();
}

Result<std::vector<ShardedLookupIndex::Match>> ShardedLookupIndex::LookupShard(
    uint32_t si, const std::string& query, size_t k, bool has_deadline,
    Clock::time_point abs_deadline, double target_recall,
    const filter::FilterPredicate& filter) {
  std::chrono::milliseconds remaining{0};
  if (has_deadline) {
    // Remaining-budget propagation: the shard gets what is left NOW, not the
    // caller's original allowance — queueing ahead of this dispatch (and the
    // hedge delay, for hedges) is charged, never re-granted.
    Clock::time_point now = Clock::now();
    if (now >= abs_deadline) {
      return Status::DeadlineExceeded("shard budget exhausted before dispatch");
    }
    remaining = std::chrono::ceil<std::chrono::milliseconds>(abs_deadline - now);
  }
  return services_[si]->Lookup(query, k, remaining, target_recall, filter);
}

Result<std::vector<ShardedLookupIndex::Match>> ShardedLookupIndex::Lookup(
    const std::string& query, size_t k, std::chrono::milliseconds deadline,
    double target_recall, const filter::FilterPredicate& filter) {
  Clock::time_point start = Clock::now();
  if (deadline.count() < 0) {
    metrics_.deadline_rejects.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("deadline expired before scatter");
  }
  bool has_deadline = deadline.count() > 0;
  Clock::time_point abs_deadline = start + deadline;
  metrics_.lookups.fetch_add(1, std::memory_order_relaxed);
  metrics_.fanouts.fetch_add(num_shards_, std::memory_order_relaxed);

  struct Gather {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::optional<Result<std::vector<Match>>>> first;
    std::vector<uint64_t> elapsed_us;
    size_t completed = 0;
  } gather;
  gather.first.resize(num_shards_);
  gather.elapsed_us.assign(num_shards_, 0);

  std::vector<std::thread> threads;
  threads.reserve(num_shards_ + 1);
  auto launch = [&](uint32_t si, bool is_hedge) {
    threads.emplace_back([&, si, is_hedge] {
      Result<std::vector<Match>> r = LookupShard(si, query, k, has_deadline,
                                                 abs_deadline, target_recall,
                                                 filter);
      std::lock_guard<std::mutex> lock(gather.mu);
      if (!gather.first[si].has_value()) {
        gather.first[si] = std::move(r);
        gather.elapsed_us[si] = MicrosSince(start);
        ++gather.completed;
        if (is_hedge) {
          metrics_.hedge_wins.fetch_add(1, std::memory_order_relaxed);
        }
        gather.cv.notify_all();
      }
    });
  };
  for (uint32_t si = 0; si < num_shards_; ++si) launch(si, /*is_hedge=*/false);

  std::chrono::milliseconds hedge_delay = options_.hedge_delay;
  if (hedge_delay.count() > 0) {
    std::vector<uint32_t> laggards;
    {
      std::unique_lock<std::mutex> lock(gather.mu);
      if (!gather.cv.wait_for(lock, hedge_delay, [&] {
            return gather.completed == num_shards_;
          })) {
        for (uint32_t si = 0; si < num_shards_; ++si) {
          if (!gather.first[si].has_value()) laggards.push_back(si);
        }
      }
    }
    // Launch outside the lock: hedge threads take gather.mu immediately.
    for (uint32_t si : laggards) {
      metrics_.hedges.fetch_add(1, std::memory_order_relaxed);
      launch(si, /*is_hedge=*/true);
    }
  }
  {
    std::unique_lock<std::mutex> lock(gather.mu);
    gather.cv.wait(lock, [&] { return gather.completed == num_shards_; });
  }
  // Join everything, hedges included: a lost hedge race still references
  // this frame. Bounded — every LookupService call completes (its dispatcher
  // always answers, with a result or an error).
  for (std::thread& t : threads) t.join();

  std::chrono::milliseconds straggler_bar = options_.straggler_threshold;
  if (straggler_bar.count() == 0) straggler_bar = options_.hedge_delay;
  uint64_t slowest_us = 0;
  for (uint32_t si = 0; si < num_shards_; ++si) {
    uint64_t us = gather.elapsed_us[si];
    slowest_us = std::max(slowest_us, us);
    if (straggler_bar.count() > 0 &&
        us > static_cast<uint64_t>(straggler_bar.count()) * 1000) {
      metrics_.stragglers.fetch_add(1, std::memory_order_relaxed);
    }
  }
  metrics_.slowest_us.Record(slowest_us);

  // Strict gather: any shard failure fails the lookup (a silent partial
  // merge would violate bit-identity). Deadline errors win the report since
  // they describe the request, not the cluster.
  for (uint32_t si = 0; si < num_shards_; ++si) {
    const Result<std::vector<Match>>& r = *gather.first[si];
    if (r.ok()) continue;
    if (r.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_.deadline_rejects.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.failed_lookups.fetch_add(1, std::memory_order_relaxed);
    }
    return r.status();
  }

  obs::ObsSpan merge_span(&metrics_.merge_us);
  std::vector<Match> merged;
  for (uint32_t si = 0; si < num_shards_; ++si) {
    const std::vector<Match>& part = gather.first[si]->ValueOrDie();
    merged.insert(merged.end(), part.begin(), part.end());
  }
  // The exact comparator of the per-shard sort; ids are unique across the
  // disjoint partition, so this total order reproduces the unsharded sort.
  std::sort(merged.begin(), merged.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  if (merged.size() > k) merged.resize(k);
  merge_span.Stop();
  metrics_.latency_us.Record(MicrosSince(start));
  return merged;
}

Status ShardedLookupIndex::Upsert(uint64_t doc_id, const std::string& value,
                                  const filter::AttrSet& attrs) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  uint32_t owner = ShardOf(doc_id, num_shards_);
  index::GlobalDelta delta;
  SSJOIN_RETURN_NOT_OK(
      services_[owner]->UpsertGlobal(doc_id, value, attrs, &delta));
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (i == owner) continue;
    SSJOIN_RETURN_NOT_OK(services_[i]->ApplyGlobalDelta(delta));
  }
  return Status::OK();
}

Status ShardedLookupIndex::Delete(uint64_t doc_id) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  uint32_t owner = ShardOf(doc_id, num_shards_);
  index::GlobalDelta delta;
  SSJOIN_RETURN_NOT_OK(services_[owner]->DeleteGlobal(doc_id, &delta));
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (i == owner) continue;
    SSJOIN_RETURN_NOT_OK(services_[i]->ApplyGlobalDelta(delta));
  }
  return Status::OK();
}

Status ShardedLookupIndex::BulkLoad(
    const std::vector<std::pair<uint64_t, std::string>>& records) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  std::vector<std::vector<std::pair<uint64_t, std::string>>> parts(num_shards_);
  for (const auto& rec : records) {
    parts[ShardOf(rec.first, num_shards_)].push_back(rec);
  }
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (parts[i].empty()) continue;
    SSJOIN_RETURN_NOT_OK(services_[i]->BulkLoad(parts[i]));
  }
  return RebuildGlobalStatsLocked();
}

Status ShardedLookupIndex::Seal() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  for (const auto& service : services_) SSJOIN_RETURN_NOT_OK(service->Seal());
  return Status::OK();
}

Status ShardedLookupIndex::Compact() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  for (const auto& service : services_) SSJOIN_RETURN_NOT_OK(service->Compact());
  return Status::OK();
}

std::optional<std::string> ShardedLookupIndex::ValueOf(uint64_t doc_id) const {
  return services_[ShardOf(doc_id, num_shards_)]->ValueOf(doc_id);
}

uint64_t ShardedLookupIndex::epoch() const {
  uint64_t sum = 0;
  for (const auto& service : services_) sum += service->epoch();
  return sum;
}

serve::StatsSnapshot ShardedLookupIndex::Stats() const {
  serve::StatsSnapshot agg;
  for (const auto& service : services_) {
    serve::StatsSnapshot s = service->Stats();
    agg.requests += s.requests;
    agg.rejected_overload += s.rejected_overload;
    agg.rejected_deadline += s.rejected_deadline;
    agg.cache_hits += s.cache_hits;
    agg.cache_misses += s.cache_misses;
    agg.cache_evictions += s.cache_evictions;
    agg.cache_stale_purged += s.cache_stale_purged;
    agg.batches += s.batches;
    agg.batched_lookups += s.batched_lookups;
    agg.queue_depth += s.queue_depth;
    agg.latency_count += s.latency_count;
    // Quantiles do not sum; report the worst shard's figures.
    agg.latency_mean_us = std::max(agg.latency_mean_us, s.latency_mean_us);
    agg.latency_p50_us = std::max(agg.latency_p50_us, s.latency_p50_us);
    agg.latency_p95_us = std::max(agg.latency_p95_us, s.latency_p95_us);
    agg.latency_p99_us = std::max(agg.latency_p99_us, s.latency_p99_us);
    agg.latency_max_us = std::max(agg.latency_max_us, s.latency_max_us);
  }
  return agg;
}

}  // namespace ssjoin::shard
