#include "shard/coordinator.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <optional>
#include <thread>

#include "common/string_util.h"

#include "serve/wire.h"
#include "shard/wire_client.h"

namespace ssjoin::shard {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count());
}

/// Rehydrates the status a shard server reported in its error response, so
/// wire hops do not flatten "deadline exceeded on the shard" into a generic
/// IO error (the coordinator's failure policy keys on the code).
Status StatusFromWire(const std::string& code, const std::string& message) {
  if (code == "Deadline exceeded") return Status::DeadlineExceeded(message);
  if (code == "Unavailable") return Status::Unavailable(message);
  if (code == "Invalid argument") return Status::Invalid(message);
  if (code == "Key error") return Status::KeyError(message);
  return Status::IOError(code + ": " + message);
}

using JsonObject = std::map<std::string, serve::JsonScalar>;

Result<std::string> GetString(const JsonObject& obj, const char* key) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != serve::JsonScalar::Type::kString) {
    return Status::IOError(std::string("shard response lacks string '") + key +
                           "'");
  }
  return it->second.str;
}

Result<uint64_t> GetUint(const JsonObject& obj, const char* key) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.type != serve::JsonScalar::Type::kNumber ||
      it->second.num < 0) {
    return Status::IOError(std::string("shard response lacks number '") + key +
                           "'");
  }
  return static_cast<uint64_t>(it->second.num);
}

bool GetBool(const JsonObject& obj, const char* key) {
  auto it = obj.find(key);
  return it != obj.end() &&
         it->second.type == serve::JsonScalar::Type::kBool && it->second.boolean;
}

/// One request/response round trip on a fresh connection. Connection-level
/// problems come back as Unavailable/IOError; an {"ok": false} response is
/// rehydrated via StatusFromWire.
Result<JsonObject> CallShard(const std::string& socket_path,
                             const std::string& line,
                             std::chrono::milliseconds timeout) {
  SSJOIN_ASSIGN_OR_RETURN(WireClient client, WireClient::Connect(socket_path));
  SSJOIN_ASSIGN_OR_RETURN(std::string reply, client.Call(line, timeout));
  SSJOIN_ASSIGN_OR_RETURN(JsonObject obj, serve::ParseJsonObject(reply));
  auto ok = obj.find("ok");
  if (ok == obj.end() || ok->second.type != serve::JsonScalar::Type::kBool) {
    return Status::IOError("shard response lacks 'ok'");
  }
  if (!ok->second.boolean) {
    std::string code = "IO error", message = "shard reported failure";
    if (auto c = GetString(obj, "code"); c.ok()) code = *c;
    if (auto m = GetString(obj, "error"); m.ok()) message = *m;
    return StatusFromWire(code, message);
  }
  return obj;
}

/// A shard whose process is dead or unreachable (vs. one that answered with
/// an application error) — the only failures degraded mode may drop.
bool IsUnreachable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIOError;
}

std::vector<std::string> SplitCommaList(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i <= s.size()) {
    size_t comma = s.find(',', i);
    if (comma == std::string::npos) comma = s.size();
    if (comma > i) out.push_back(s.substr(i, comma - i));
    i = comma + 1;
  }
  return out;
}

Result<std::vector<WireMatch>> ParseMatches(const JsonObject& obj) {
  SSJOIN_ASSIGN_OR_RETURN(uint64_t n, GetUint(obj, "n"));
  SSJOIN_ASSIGN_OR_RETURN(std::string ids_s, GetString(obj, "ids"));
  SSJOIN_ASSIGN_OR_RETURN(std::string sims_s, GetString(obj, "sims"));
  SSJOIN_ASSIGN_OR_RETURN(std::string values_s, GetString(obj, "values"));
  std::vector<std::string> ids = SplitCommaList(ids_s);
  std::vector<std::string> sims = SplitCommaList(sims_s);
  SSJOIN_ASSIGN_OR_RETURN(std::vector<std::string> values,
                          UnpackNetstrings(values_s));
  if (ids.size() != n || sims.size() != n || values.size() != n) {
    return Status::IOError("shard lookup response fields disagree on count");
  }
  std::vector<WireMatch> matches(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    SSJOIN_ASSIGN_OR_RETURN(matches[i].id, ParseUint64(ids[i]));
    SSJOIN_ASSIGN_OR_RETURN(matches[i].similarity, ParseHexDouble(sims[i]));
    matches[i].value = std::move(values[i]);
  }
  return matches;
}

}  // namespace

Coordinator::Coordinator(const CoordinatorOptions& options)
    : options_(options) {}

Coordinator::~Coordinator() {
  if (uint64_t pid = provider_id_.exchange(0); pid != 0) {
    obs::Registry::Global().UnregisterProvider(pid);
  }
}

Result<std::unique_ptr<Coordinator>> Coordinator::Create(
    const CoordinatorOptions& options) {
  if (options.shard_sockets.empty()) {
    return Status::Invalid("coordinator needs at least one shard socket");
  }
  std::unique_ptr<Coordinator> coord(new Coordinator(options));
  coord->provider_id_.store(obs::Registry::Global().RegisterProvider(
      [c = coord.get()](std::vector<obs::MetricPoint>* out) {
        CollectShardMetrics(c->metrics_, c->num_shards(), out);
      }));
  return coord;
}

Result<std::vector<WireMatch>> Coordinator::LookupShard(
    uint32_t si, const std::string& query, size_t k, bool has_deadline,
    Clock::time_point abs_deadline, double target_recall,
    const filter::FilterPredicate& filter) {
  std::string line = "{\"op\": \"slookup\", \"query\": \"" +
                     serve::JsonEscape(query) +
                     "\", \"k\": " + std::to_string(k);
  std::chrono::milliseconds wire_budget = options_.admin_timeout;
  if (has_deadline) {
    Clock::time_point now = Clock::now();
    if (now >= abs_deadline) {
      return Status::DeadlineExceeded("shard budget exhausted before dispatch");
    }
    auto remaining =
        std::chrono::ceil<std::chrono::milliseconds>(abs_deadline - now);
    line += ", \"deadline_ms\": " + std::to_string(remaining.count());
    // The shard enforces the deadline itself; the wire budget adds transport
    // slack so its DeadlineExceeded response beats our socket timeout.
    wire_budget = remaining + std::chrono::milliseconds(1000);
  }
  if (target_recall < 1.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ", \"target_recall\": %.17g", target_recall);
    line += buf;
  }
  if (!filter.empty()) {
    // The canonical form both sides agree on: the shard re-parses it into
    // the same predicate, and its own cache keys use the same bytes.
    line += ", \"filter\": " + filter.CanonicalJson();
  }
  line += "}";
  SSJOIN_ASSIGN_OR_RETURN(
      JsonObject obj,
      CallShard(options_.shard_sockets[si], line, wire_budget));
  return ParseMatches(obj);
}

Result<CoordinatorLookup> Coordinator::Lookup(const std::string& query,
                                              size_t k,
                                              std::chrono::milliseconds deadline,
                                              double target_recall,
                                              const filter::FilterPredicate& filter) {
  Clock::time_point start = Clock::now();
  if (deadline.count() < 0) {
    metrics_.deadline_rejects.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("deadline expired before scatter");
  }
  bool has_deadline = deadline.count() > 0;
  Clock::time_point abs_deadline = start + deadline;
  uint32_t n = num_shards();
  metrics_.lookups.fetch_add(1, std::memory_order_relaxed);
  metrics_.fanouts.fetch_add(n, std::memory_order_relaxed);

  struct Gather {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::optional<Result<std::vector<WireMatch>>>> first;
    std::vector<uint64_t> elapsed_us;
    size_t completed = 0;
  } gather;
  gather.first.resize(n);
  gather.elapsed_us.assign(n, 0);

  std::vector<std::thread> threads;
  threads.reserve(n + 1);
  auto launch = [&](uint32_t si, bool is_hedge) {
    threads.emplace_back([&, si, is_hedge] {
      Result<std::vector<WireMatch>> r = LookupShard(
          si, query, k, has_deadline, abs_deadline, target_recall, filter);
      std::lock_guard<std::mutex> lock(gather.mu);
      if (!gather.first[si].has_value()) {
        gather.first[si] = std::move(r);
        gather.elapsed_us[si] = MicrosSince(start);
        ++gather.completed;
        if (is_hedge) {
          metrics_.hedge_wins.fetch_add(1, std::memory_order_relaxed);
        }
        gather.cv.notify_all();
      }
    });
  };
  for (uint32_t si = 0; si < n; ++si) launch(si, /*is_hedge=*/false);

  if (options_.hedge_delay.count() > 0) {
    std::vector<uint32_t> laggards;
    {
      std::unique_lock<std::mutex> lock(gather.mu);
      if (!gather.cv.wait_for(lock, options_.hedge_delay,
                              [&] { return gather.completed == n; })) {
        for (uint32_t si = 0; si < n; ++si) {
          if (!gather.first[si].has_value()) laggards.push_back(si);
        }
      }
    }
    for (uint32_t si : laggards) {
      metrics_.hedges.fetch_add(1, std::memory_order_relaxed);
      launch(si, /*is_hedge=*/true);
    }
  }
  {
    std::unique_lock<std::mutex> lock(gather.mu);
    gather.cv.wait(lock, [&] { return gather.completed == n; });
  }
  for (std::thread& t : threads) t.join();

  std::chrono::milliseconds straggler_bar = options_.straggler_threshold;
  if (straggler_bar.count() == 0) straggler_bar = options_.hedge_delay;
  uint64_t slowest_us = 0;
  for (uint32_t si = 0; si < n; ++si) {
    uint64_t us = gather.elapsed_us[si];
    slowest_us = std::max(slowest_us, us);
    if (straggler_bar.count() > 0 &&
        us > static_cast<uint64_t>(straggler_bar.count()) * 1000) {
      metrics_.stragglers.fetch_add(1, std::memory_order_relaxed);
    }
  }
  metrics_.slowest_us.Record(slowest_us);

  CoordinatorLookup out;
  std::vector<const std::vector<WireMatch>*> parts;
  for (uint32_t si = 0; si < n; ++si) {
    const Result<std::vector<WireMatch>>& r = *gather.first[si];
    if (r.ok()) {
      parts.push_back(&r.ValueOrDie());
      ++out.shards_ok;
      continue;
    }
    if (options_.allow_degraded && IsUnreachable(r.status())) {
      out.degraded = true;
      metrics_.degraded.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (r.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_.deadline_rejects.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.failed_lookups.fetch_add(1, std::memory_order_relaxed);
    }
    return r.status();
  }
  if (out.shards_ok == 0) {
    metrics_.failed_lookups.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("no shard is reachable");
  }

  obs::ObsSpan merge_span(&metrics_.merge_us);
  for (const auto* part : parts) {
    out.matches.insert(out.matches.end(), part->begin(), part->end());
  }
  std::sort(out.matches.begin(), out.matches.end(),
            [](const WireMatch& a, const WireMatch& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  if (out.matches.size() > k) out.matches.resize(k);
  merge_span.Stop();
  metrics_.latency_us.Record(MicrosSince(start));
  return out;
}

Result<uint64_t> Coordinator::Upsert(uint64_t doc_id, const std::string& value,
                                     const filter::AttrSet& attrs) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  uint32_t owner = ShardOf(doc_id, num_shards());
  std::string line = "{\"op\": \"upsert\", \"id\": " + std::to_string(doc_id) +
                     ", \"value\": \"" + serve::JsonEscape(value) +
                     "\", \"global\": true";
  if (!attrs.empty()) {
    line += ", \"attrs\": " + serve::AttrsToJson(attrs);
  }
  line += "}";
  SSJOIN_ASSIGN_OR_RETURN(
      JsonObject reply,
      CallShard(options_.shard_sockets[owner], line, options_.admin_timeout));
  SSJOIN_ASSIGN_OR_RETURN(uint64_t epoch_sum, GetUint(reply, "epoch"));

  std::string delta = "{\"op\": \"gstats\", \"has_added\": true, \"added\": \"" +
                      serve::JsonEscape(value) + "\"";
  if (GetBool(reply, "had_prev")) {
    SSJOIN_ASSIGN_OR_RETURN(std::string prev, GetString(reply, "prev"));
    delta += ", \"has_removed\": true, \"removed\": \"" +
             serve::JsonEscape(prev) + "\"";
  }
  delta += "}";
  for (uint32_t si = 0; si < num_shards(); ++si) {
    if (si == owner) continue;
    SSJOIN_ASSIGN_OR_RETURN(
        JsonObject r,
        CallShard(options_.shard_sockets[si], delta, options_.admin_timeout));
    SSJOIN_ASSIGN_OR_RETURN(uint64_t e, GetUint(r, "epoch"));
    epoch_sum += e;
  }
  return epoch_sum;
}

Result<uint64_t> Coordinator::Delete(uint64_t doc_id) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  uint32_t owner = ShardOf(doc_id, num_shards());
  std::string line = "{\"op\": \"delete\", \"id\": " + std::to_string(doc_id) +
                     ", \"global\": true}";
  SSJOIN_ASSIGN_OR_RETURN(
      JsonObject reply,
      CallShard(options_.shard_sockets[owner], line, options_.admin_timeout));
  SSJOIN_ASSIGN_OR_RETURN(uint64_t epoch_sum, GetUint(reply, "epoch"));
  if (!GetBool(reply, "had_prev")) return epoch_sum;  // no-op tombstone

  SSJOIN_ASSIGN_OR_RETURN(std::string prev, GetString(reply, "prev"));
  std::string delta =
      "{\"op\": \"gstats\", \"has_removed\": true, \"removed\": \"" +
      serve::JsonEscape(prev) + "\"}";
  for (uint32_t si = 0; si < num_shards(); ++si) {
    if (si == owner) continue;
    SSJOIN_ASSIGN_OR_RETURN(
        JsonObject r,
        CallShard(options_.shard_sockets[si], delta, options_.admin_timeout));
    SSJOIN_ASSIGN_OR_RETURN(uint64_t e, GetUint(r, "epoch"));
    epoch_sum += e;
  }
  return epoch_sum;
}

Status Coordinator::Resync() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  std::vector<std::pair<uint64_t, std::string>> all;
  for (uint32_t si = 0; si < num_shards(); ++si) {
    SSJOIN_ASSIGN_OR_RETURN(
        JsonObject reply,
        CallShard(options_.shard_sockets[si], "{\"op\": \"dump\"}",
                  options_.admin_timeout));
    SSJOIN_ASSIGN_OR_RETURN(uint64_t count, GetUint(reply, "n"));
    SSJOIN_ASSIGN_OR_RETURN(std::string ids_s, GetString(reply, "ids"));
    SSJOIN_ASSIGN_OR_RETURN(std::string values_s, GetString(reply, "values"));
    std::vector<std::string> ids = SplitCommaList(ids_s);
    SSJOIN_ASSIGN_OR_RETURN(std::vector<std::string> values,
                            UnpackNetstrings(values_s));
    if (ids.size() != count || values.size() != count) {
      return Status::IOError("shard dump fields disagree on count");
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      SSJOIN_ASSIGN_OR_RETURN(uint64_t id, ParseUint64(ids[i]));
      all.emplace_back(id, std::move(values[i]));
    }
  }
  // Same deterministic order ShardedLookupIndex::RebuildGlobalStatsLocked
  // feeds ResetGlobalStats, so both tiers intern identically after recovery.
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> values;
  values.reserve(all.size());
  for (auto& [id, value] : all) values.push_back(std::move(value));
  std::string line = "{\"op\": \"gstats_reset\", \"values\": \"" +
                     serve::JsonEscape(PackNetstrings(values)) + "\"}";
  for (uint32_t si = 0; si < num_shards(); ++si) {
    SSJOIN_RETURN_NOT_OK(
        CallShard(options_.shard_sockets[si], line, options_.admin_timeout)
            .status());
  }
  return Status::OK();
}

Status Coordinator::Broadcast(const std::string& op) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  std::string line = "{\"op\": \"" + serve::JsonEscape(op) + "\"}";
  for (uint32_t si = 0; si < num_shards(); ++si) {
    SSJOIN_RETURN_NOT_OK(
        CallShard(options_.shard_sockets[si], line, options_.admin_timeout)
            .status());
  }
  return Status::OK();
}

Result<uint64_t> Coordinator::ClusterEpoch() {
  uint64_t sum = 0;
  for (uint32_t si = 0; si < num_shards(); ++si) {
    SSJOIN_ASSIGN_OR_RETURN(
        JsonObject reply,
        CallShard(options_.shard_sockets[si], "{\"op\": \"epoch\"}",
                  options_.admin_timeout));
    SSJOIN_ASSIGN_OR_RETURN(uint64_t e, GetUint(reply, "epoch"));
    sum += e;
  }
  return sum;
}

}  // namespace ssjoin::shard
