#ifndef SSJOIN_SHARD_COORDINATOR_H_
#define SSJOIN_SHARD_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "filter/attr.h"
#include "filter/predicate.h"
#include "shard/metrics.h"
#include "shard/router.h"

namespace ssjoin::shard {

/// Knobs of a Coordinator.
struct CoordinatorOptions {
  /// One shard-server unix socket per shard; position IS the shard id, so the
  /// list must match the ShardOf routing every writer used.
  std::vector<std::string> shard_sockets;
  /// Hedged retries, as in ShardedIndexOptions (0 disables).
  std::chrono::milliseconds hedge_delay{0};
  std::chrono::milliseconds straggler_threshold{0};
  /// When true, a shard that cannot be reached (dead process, refused
  /// connection, torn connection) is dropped from the merge and the response
  /// is marked degraded instead of failing — the operator-facing behavior
  /// when a shard is killed. Deadline and application errors still fail.
  bool allow_degraded = true;
  /// Wire budget for mutations, resync and other administrative calls, which
  /// carry no caller deadline. Zero = wait forever.
  std::chrono::milliseconds admin_timeout{30000};
};

/// One match as reported over the wire (value included, so the coordinator
/// never needs a second round trip to render results).
struct WireMatch {
  uint64_t id = 0;
  double similarity = 0.0;
  std::string value;
};

/// A scatter-gather response plus its completeness: `degraded` is true when
/// at least one unreachable shard was excluded from the merge.
struct CoordinatorLookup {
  std::vector<WireMatch> matches;
  bool degraded = false;
  uint32_t shards_ok = 0;
};

/// \brief Multi-process scatter-gather front end: each shard is a separate
/// ssjoin_served process (single mode, which carries the shard-server wire
/// ops) and the coordinator fans lookups out over their sockets.
///
/// Same contract as the in-process ShardedLookupIndex — remaining-deadline
/// propagation (each dispatch and each hedge gets the budget left NOW),
/// hedged retries, `shard.*` metrics — with two wire-specific differences:
///   - Scores cross as hex-float literals and values as netstrings, so a
///     non-degraded merge stays bit-identical to the unsharded oracle.
///   - Failure policy is configurable: a dead shard process yields a
///     degraded partial response when `allow_degraded` (counted in
///     `shard.degraded`), because over sockets a dead peer is an observable
///     operational fact rather than a silent correctness bug.
///
/// Mutations route to the owner shard (global mode: the owner returns the
/// replaced value), then broadcast the global-stats delta to every other
/// shard; all shards must be reachable, else the mutation fails. Resync
/// rebuilds every shard's global statistics from a full cluster dump — run
/// it after a shard process restarts (its rebuilt stats cover only its own
/// slice until then).
class Coordinator {
 public:
  static Result<std::unique_ptr<Coordinator>> Create(
      const CoordinatorOptions& options);

  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// A non-empty `filter` rides the slookup fan-out as its canonical JSON
  /// (`"filter": {...}`), so every shard applies the identical predicate and
  /// the merged result matches a filtered unsharded lookup bit for bit.
  Result<CoordinatorLookup> Lookup(
      const std::string& query, size_t k,
      std::chrono::milliseconds deadline = std::chrono::milliseconds::zero(),
      double target_recall = 1.0,
      const filter::FilterPredicate& filter = {});

  /// Routed mutations; the returned epoch is the cluster epoch (sum of every
  /// shard's epoch after the broadcast). Attributes travel only to the owner
  /// shard — they never affect global statistics.
  Result<uint64_t> Upsert(uint64_t doc_id, const std::string& value,
                          const filter::AttrSet& attrs = {});
  Result<uint64_t> Delete(uint64_t doc_id);

  /// Dumps every shard's live documents and resets every shard's global
  /// statistics from the union — the recovery step after a shard restart.
  Status Resync();

  /// Broadcasts one no-payload op ("seal", "compact") to every shard.
  Status Broadcast(const std::string& op);

  /// Sum of the shards' epochs (admin round trip to every shard).
  Result<uint64_t> ClusterEpoch();

  uint32_t num_shards() const {
    return static_cast<uint32_t>(options_.shard_sockets.size());
  }

 private:
  explicit Coordinator(const CoordinatorOptions& options);

  /// One shard sub-lookup over a fresh connection, with the remaining
  /// budget computed at dispatch.
  Result<std::vector<WireMatch>> LookupShard(
      uint32_t si, const std::string& query, size_t k, bool has_deadline,
      std::chrono::steady_clock::time_point abs_deadline, double target_recall,
      const filter::FilterPredicate& filter);

  CoordinatorOptions options_;
  std::mutex mutation_mu_;
  ShardMetrics metrics_;
  std::atomic<uint64_t> provider_id_{0};
};

}  // namespace ssjoin::shard

#endif  // SSJOIN_SHARD_COORDINATOR_H_
