#ifndef SSJOIN_SHARD_SHARDED_INDEX_H_
#define SSJOIN_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "filter/attr.h"
#include "filter/predicate.h"
#include "index/mutable_index.h"
#include "serve/lookup_service.h"
#include "shard/metrics.h"
#include "shard/router.h"

namespace ssjoin::shard {

/// Knobs of a ShardedLookupIndex.
struct ShardedIndexOptions {
  /// Number of hash partitions (>= 1). Fixed for the life of a data dir:
  /// re-opening with a different count is refused (routing would disagree
  /// with where the documents actually live).
  uint32_t num_shards = 1;
  /// Tokenization / similarity options, shared by every shard.
  simjoin::FuzzyMatchIndex::Options match;
  /// Root data directory; shard i persists under `<data_dir>/shard-<i>`.
  /// Empty = purely in-memory.
  std::string data_dir;
  size_t seal_threshold = 256;
  size_t max_generations = 4;
  /// Per-shard LookupService knobs (queue, batch, threads, cache). The exec
  /// context is shared verbatim by every shard's service.
  serve::LookupServiceOptions service;
  /// Hedged retries: when > 0 and a shard has not answered this long after
  /// dispatch, a duplicate lookup is issued against it and the first answer
  /// wins. 0 disables hedging.
  std::chrono::milliseconds hedge_delay{0};
  /// A shard whose first answer lands later than this counts as a straggler
  /// in `shard.stragglers`; 0 falls back to hedge_delay (so hedging and
  /// straggler accounting share one bar unless told otherwise).
  std::chrono::milliseconds straggler_threshold{0};
};

/// \brief N-way hash-partitioned fuzzy lookup: each shard owns a
/// MutableFuzzyIndex + LookupService over its slice of the documents, and
/// Lookup scatter-gathers the per-shard top-k into a global top-k.
///
/// ## The shard-count invariance contract
/// For ANY shard count N, Lookup results are bit-identical (ids, scores and
/// order) to one unsharded MutableFuzzyIndex over the same live records —
/// which is itself bit-identical to a from-scratch immutable build. Three
/// facts carry the proof:
///   1. Every weight input is global: shards run in global-stats mode (see
///      MutableFuzzyIndex's Global API), so n, per-token document frequency
///      and token liveness — hence every weight, every prefix and the exact
///      quantized similarity of every (query, doc) pair — are the same
///      numbers the unsharded index computes. A shard holds only its own
///      postings, so it scores exactly the subset of documents it owns.
///   2. The hash partition is disjoint and exhaustive, so per-shard result
///      sets never overlap and their union over all shards equals the
///      unsharded candidate set. Each shard returns its top-k, and any
///      document in the global top-k is in its own shard's top-k (ranks
///      only shrink when other shards' documents are removed).
///   3. The merge re-sorts the union with the index's exact comparator
///      (similarity desc, id asc — total, since ids are unique) and
///      truncates to k, reproducing the unsharded sort byte for byte.
/// Enforced by differential unit tests (N ∈ {1, 2, 3, 8}, fresh and
/// WAL-replayed) and the `sharded_lookup` fuzz scenario.
///
/// ## Deadline budgeting
/// Lookup computes an absolute deadline on entry; each shard dispatch is
/// given the budget REMAINING at its own dispatch time (ceil to ms, min 1ms)
/// rather than the caller's original allowance, so time burned before or
/// between dispatches — and before a hedge — is charged, never re-granted.
/// A budget that reaches zero fails the lookup with DeadlineExceeded.
///
/// ## Failure semantics
/// Strict: if any shard fails, the lookup fails with that shard's status (a
/// partial merge would break bit-identity silently). Degraded partial
/// responses are a coordinator-level policy for the multi-process tier,
/// where a dead shard is a process you can observe and advertise.
class ShardedLookupIndex {
 public:
  using Match = index::MutableFuzzyIndex::Match;

  /// Creates an empty N-shard index (with a data_dir: initializes per-shard
  /// subdirectories plus a SHARDS file recording N).
  static Result<std::unique_ptr<ShardedLookupIndex>> Create(
      const ShardedIndexOptions& options);

  /// Reopens a sharded data dir: validates the SHARDS file against
  /// `options.num_shards` (0 = take the persisted count), opens every shard
  /// (WAL replay included) and rebuilds the global statistics from the
  /// shards' live documents — global stats are never persisted.
  static Result<std::unique_ptr<ShardedLookupIndex>> Open(
      const ShardedIndexOptions& options);

  ~ShardedLookupIndex();
  ShardedLookupIndex(const ShardedLookupIndex&) = delete;
  ShardedLookupIndex& operator=(const ShardedLookupIndex&) = delete;

  /// Scatter-gathers the best k matches across all shards. See the contract
  /// above; deadline zero = no deadline. A non-empty `filter` fans out to
  /// every shard, where each restricts its own candidates — attributes are
  /// owner-local, so the filtered merge stays bit-identical to a filtered
  /// unsharded lookup (filtering removes candidates, never reweights them).
  Result<std::vector<Match>> Lookup(
      const std::string& query, size_t k,
      std::chrono::milliseconds deadline = std::chrono::milliseconds::zero(),
      double target_recall = 1.0,
      const filter::FilterPredicate& filter = {});

  /// Routed mutations: the owner shard applies the document and the
  /// resulting global-stats delta is broadcast to every other shard, keeping
  /// all published weights cluster-accurate. Serialized internally.
  /// Attributes never join the delta — they do not affect IDF weights and
  /// stay on the owner shard.
  Status Upsert(uint64_t doc_id, const std::string& value,
                const filter::AttrSet& attrs = {});
  Status Delete(uint64_t doc_id);

  /// Partitions `records` across shards, bulk-loads each, then rebuilds the
  /// global statistics everywhere (one publish per shard).
  Status BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& records);

  Status Seal();     // every shard
  Status Compact();  // every shard

  /// The current live value of `doc_id`, resolved on its owner shard.
  std::optional<std::string> ValueOf(uint64_t doc_id) const;

  /// Sum of shard epochs: advances on every mutation anywhere, giving
  /// clients one monotone progress number for the whole cluster.
  uint64_t epoch() const;

  uint32_t num_shards() const { return num_shards_; }
  serve::LookupService* shard_service(uint32_t i) { return services_[i].get(); }

  /// Aggregated per-shard service counters (sums across shards).
  serve::StatsSnapshot Stats() const;

 private:
  explicit ShardedLookupIndex(const ShardedIndexOptions& options);

  /// One shard sub-lookup with remaining-budget propagation.
  Result<std::vector<Match>> LookupShard(uint32_t si, const std::string& query,
                                         size_t k, bool has_deadline,
                                         std::chrono::steady_clock::time_point
                                             abs_deadline,
                                         double target_recall,
                                         const filter::FilterPredicate& filter);

  /// Re-derives every shard's global statistics from the union of all
  /// shards' live documents. Requires mutation_mu_.
  Status RebuildGlobalStatsLocked();

  ShardedIndexOptions options_;
  uint32_t num_shards_ = 1;
  std::vector<std::unique_ptr<serve::LookupService>> services_;

  /// Serializes mutations so the owner-apply + broadcast pair is atomic with
  /// respect to other mutations (lookups never take this).
  mutable std::mutex mutation_mu_;

  ShardMetrics metrics_;
  std::atomic<uint64_t> provider_id_{0};
};

}  // namespace ssjoin::shard

#endif  // SSJOIN_SHARD_SHARDED_INDEX_H_
