#ifndef SSJOIN_SHARD_ROUTER_H_
#define SSJOIN_SHARD_ROUTER_H_

#include <cstdint>

#include "common/hash.h"

namespace ssjoin::shard {

/// The shard owning `doc_id` under an N-way hash partition. Mix64 gives full
/// avalanche so sequential ids spread evenly; the mapping is a pure function
/// of (doc_id, num_shards), which every process of a cluster must agree on —
/// the coordinator, every shard server and every test route with this one
/// function.
inline uint32_t ShardOf(uint64_t doc_id, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<uint32_t>(Mix64(doc_id) % num_shards);
}

}  // namespace ssjoin::shard

#endif  // SSJOIN_SHARD_ROUTER_H_
