#include "datagen/wordlists.h"

#include <unordered_set>

namespace ssjoin::datagen {

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "James",   "Mary",      "Robert",  "Patricia", "John",    "Jennifer",
      "Michael", "Linda",     "David",   "Elizabeth", "William", "Barbara",
      "Richard", "Susan",     "Joseph",  "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",     "Christopher", "Lisa", "Daniel",  "Nancy",
      "Matthew", "Betty",     "Anthony", "Margaret", "Mark",    "Sandra",
      "Donald",  "Ashley",    "Steven",  "Kimberly", "Paul",    "Emily",
      "Andrew",  "Donna",     "Joshua",  "Michelle", "Kenneth", "Carol",
      "Kevin",   "Amanda",    "Brian",   "Dorothy",  "George",  "Melissa",
      "Timothy", "Deborah",   "Ronald",  "Stephanie", "Edward", "Rebecca",
      "Jason",   "Sharon",    "Jeffrey", "Laura",    "Ryan",    "Cynthia",
      "Jacob",   "Kathleen",  "Gary",    "Amy",      "Nicholas", "Angela",
      "Eric",    "Shirley",   "Jonathan", "Anna",    "Stephen", "Brenda",
      "Larry",   "Pamela",    "Justin",  "Emma",     "Scott",   "Nicole",
      "Brandon", "Helen",     "Benjamin", "Samantha", "Samuel", "Katherine",
      "Gregory", "Christine", "Alexander", "Debra",  "Patrick", "Rachel",
      "Frank",   "Carolyn",   "Raymond", "Janet",    "Jack",    "Maria",
      "Dennis",  "Catherine", "Jerry",   "Heather",  "Tyler",   "Diane"};
  return *kNames;
}

const std::vector<std::string>& StreetTypes() {
  static const std::vector<std::string>* kTypes = new std::vector<std::string>{
      "St", "Ave", "Rd", "Dr", "Ln", "Blvd", "Ct", "Pl", "Way", "Ter", "Cir", "Pkwy"};
  return *kTypes;
}

const std::vector<std::string>& StreetTypesLong() {
  static const std::vector<std::string>* kTypes = new std::vector<std::string>{
      "Street", "Avenue", "Road",    "Drive",   "Lane",   "Boulevard",
      "Court",  "Place",  "Way",     "Terrace", "Circle", "Parkway"};
  return *kTypes;
}

const std::vector<std::string>& Directions() {
  static const std::vector<std::string>* kDirs =
      new std::vector<std::string>{"N", "S", "E", "W", "NE", "NW", "SE", "SW"};
  return *kDirs;
}

const std::vector<std::string>& UnitTypes() {
  static const std::vector<std::string>* kUnits =
      new std::vector<std::string>{"Apt", "Suite", "Unit", "Ste", "Fl"};
  return *kUnits;
}

const std::vector<std::string>& StateCodes() {
  static const std::vector<std::string>* kStates = new std::vector<std::string>{
      "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL",
      "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT",
      "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI",
      "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY"};
  return *kStates;
}

std::vector<std::string> GenerateProperNouns(size_t count, uint64_t seed) {
  static const char* kOnsets[] = {"b",  "br", "c",  "ch", "cl", "d",  "f",  "g",
                                  "gr", "h",  "j",  "k",  "l",  "m",  "n",  "p",
                                  "r",  "s",  "sh", "st", "t",  "th", "v",  "w"};
  static const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ee", "ou"};
  static const char* kCodas[] = {"",   "n",  "r",  "l",  "s",  "t",
                                 "rd", "ck", "nd", "ll", "m",  "y"};
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(count);
  while (out.size() < count) {
    std::string word;
    size_t syllables = 2 + rng.Uniform(2);
    for (size_t i = 0; i < syllables; ++i) {
      word += kOnsets[rng.Uniform(std::size(kOnsets))];
      word += kVowels[rng.Uniform(std::size(kVowels))];
      if (i + 1 == syllables) word += kCodas[rng.Uniform(std::size(kCodas))];
    }
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
    if (seen.insert(word).second) out.push_back(std::move(word));
  }
  return out;
}

ZipfPool::ZipfPool(std::vector<std::string> words, double skew)
    : words_(std::move(words)), table_(words_.empty() ? 1 : words_.size(), skew) {
  SSJOIN_CHECK(!words_.empty());
}

const std::string& ZipfPool::Sample(Rng* rng) const {
  return words_[table_.Sample(rng)];
}

}  // namespace ssjoin::datagen
