#ifndef SSJOIN_DATAGEN_PUBLICATION_GEN_H_
#define SSJOIN_DATAGEN_PUBLICATION_GEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ssjoin::datagen {

/// Options for the synthetic publication database of Example 5 (two sources
/// being integrated, with different author-naming conventions — textual
/// similarity of names is deliberately weak, so co-occurrence with paper
/// titles is the identifying signal).
struct PublicationGenOptions {
  size_t num_authors = 500;
  size_t min_papers_per_author = 4;
  size_t max_papers_per_author = 15;
  /// Fraction of an author's papers present in only one of the two sources
  /// (sources have overlapping but not identical coverage).
  double coverage_noise = 0.2;
  uint64_t seed = 7;
};

/// \brief Two <author-name, paper-title> relations with ground truth.
struct PublicationDataset {
  /// Source 1 renders authors "First Last"; source 2 renders "Last, F.".
  std::vector<std::pair<std::string, std::string>> source1_rows;
  std::vector<std::pair<std::string, std::string>> source2_rows;
  /// Parallel ground truth: canonical author i appears as
  /// source1_names[i] in source 1 and source2_names[i] in source 2.
  std::vector<std::string> source1_names;
  std::vector<std::string> source2_names;
};

/// \brief Generates the publication database. Deterministic for a fixed seed.
PublicationDataset GeneratePublications(const PublicationGenOptions& options);

}  // namespace ssjoin::datagen

#endif  // SSJOIN_DATAGEN_PUBLICATION_GEN_H_
