#include "datagen/publication_gen.h"

#include "common/rng.h"
#include "datagen/wordlists.h"

namespace ssjoin::datagen {

namespace {

const std::vector<std::string>& TitleWords() {
  static const std::vector<std::string>* kWords = new std::vector<std::string>{
      "efficient",   "scalable",  "distributed", "adaptive",  "incremental",
      "approximate", "robust",    "parallel",    "streaming", "probabilistic",
      "query",       "index",     "join",        "storage",   "transaction",
      "cache",       "graph",     "learning",    "cleaning",  "integration",
      "processing",  "evaluation", "optimization", "estimation", "mining",
      "databases",   "systems",   "networks",    "warehouses", "clusters",
      "records",     "streams",   "tables",      "schemas",   "workloads"};
  return *kWords;
}

std::string MakeTitle(Rng* rng) {
  const auto& words = TitleWords();
  std::string title;
  size_t len = 4 + rng->Uniform(4);
  for (size_t i = 0; i < len; ++i) {
    if (i > 0) title += ' ';
    title += words[rng->Uniform(words.size())];
  }
  return title;
}

}  // namespace

PublicationDataset GeneratePublications(const PublicationGenOptions& options) {
  Rng rng(options.seed);
  const auto& first_names = FirstNames();
  std::vector<std::string> last_names =
      GenerateProperNouns(options.num_authors, options.seed ^ 0xAB1E);

  PublicationDataset out;
  out.source1_names.reserve(options.num_authors);
  out.source2_names.reserve(options.num_authors);
  for (size_t a = 0; a < options.num_authors; ++a) {
    const std::string& first = first_names[rng.Uniform(first_names.size())];
    const std::string& last = last_names[a];
    // Source 1: "First Last"; source 2: "Last, F." — textually dissimilar
    // renderings of the same author (Example 5's premise).
    std::string name1 = first + ' ' + last;
    std::string name2 = last + ", " + first[0] + '.';
    out.source1_names.push_back(name1);
    out.source2_names.push_back(name2);

    size_t span = options.max_papers_per_author - options.min_papers_per_author + 1;
    size_t papers = options.min_papers_per_author + rng.Uniform(span);
    for (size_t p = 0; p < papers; ++p) {
      std::string title = MakeTitle(&rng);
      bool only_one_source = rng.Bernoulli(options.coverage_noise);
      if (only_one_source) {
        if (rng.Bernoulli(0.5)) {
          out.source1_rows.emplace_back(name1, title);
        } else {
          out.source2_rows.emplace_back(name2, title);
        }
      } else {
        out.source1_rows.emplace_back(name1, title);
        out.source2_rows.emplace_back(name2, title);
      }
    }
  }
  return out;
}

}  // namespace ssjoin::datagen
