#ifndef SSJOIN_DATAGEN_ERROR_MODEL_H_
#define SSJOIN_DATAGEN_ERROR_MODEL_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace ssjoin::datagen {

/// \brief Knobs of the dirty-data error model applied to duplicate records.
/// Defaults produce the "typing mistakes, differences in conventions"
/// mixture the paper's introduction describes.
struct ErrorModelOptions {
  /// Expected number of character-level edits per duplicated string.
  double char_edits_mean = 2.0;
  /// Probability that a token is replaced by its abbreviation/expansion
  /// (e.g. "Ave" <-> "Avenue") when a mapping exists.
  double abbreviation_prob = 0.25;
  /// Probability of dropping one token.
  double token_drop_prob = 0.08;
  /// Probability of swapping two adjacent tokens.
  double token_swap_prob = 0.05;
};

/// \brief Applies one random character edit (insert / delete / substitute /
/// transpose, uniformly) at a random position. Empty strings only receive
/// inserts.
std::string ApplyCharEdit(const std::string& s, Rng* rng);

/// \brief Applies the full error model to a whitespace-tokenized record:
/// abbreviation swaps from `abbrev_pairs` (bidirectional), token drop/swap,
/// then Poisson-ish character edits. Deterministic given the Rng state.
std::string CorruptRecord(
    const std::string& record,
    const std::vector<std::pair<std::string, std::string>>& abbrev_pairs,
    const ErrorModelOptions& opts, Rng* rng);

}  // namespace ssjoin::datagen

#endif  // SSJOIN_DATAGEN_ERROR_MODEL_H_
