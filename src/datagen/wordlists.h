#ifndef SSJOIN_DATAGEN_WORDLISTS_H_
#define SSJOIN_DATAGEN_WORDLISTS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace ssjoin::datagen {

/// Token pools backing the synthetic datasets. Small curated lists supply
/// the high-frequency heads (street types, directions, common first names);
/// a deterministic syllable generator supplies arbitrarily large tails of
/// plausible proper nouns, so generated corpora have both the frequent-token
/// skew and the long tail of real address/name data.

/// Common US-style first names (curated head pool).
const std::vector<std::string>& FirstNames();

/// Street-type tokens ("St", "Ave", ...) — the very frequent tokens whose
/// equi-join blowup motivates the prefix filter (§4.1).
const std::vector<std::string>& StreetTypes();

/// Full spellings of street types, paired with StreetTypes() by index
/// ("Street" for "St", ...), used by the abbreviation error model.
const std::vector<std::string>& StreetTypesLong();

/// Directional tokens ("N", "NE", ...).
const std::vector<std::string>& Directions();

/// Unit designators ("Apt", "Suite", ...).
const std::vector<std::string>& UnitTypes();

/// US state codes.
const std::vector<std::string>& StateCodes();

/// \brief Deterministically generates `count` distinct capitalized
/// pseudo-words (syllable concatenation) for surname / street-name / city
/// pools of any size.
std::vector<std::string> GenerateProperNouns(size_t count, uint64_t seed);

/// \brief Word pool with Zipf-distributed sampling.
class ZipfPool {
 public:
  /// `skew` is the Zipf exponent (0 = uniform; ~1 = natural language-ish).
  ZipfPool(std::vector<std::string> words, double skew);

  const std::string& Sample(Rng* rng) const;
  size_t size() const { return words_.size(); }
  const std::vector<std::string>& words() const { return words_; }

 private:
  std::vector<std::string> words_;
  ZipfTable table_;
};

}  // namespace ssjoin::datagen

#endif  // SSJOIN_DATAGEN_WORDLISTS_H_
