#ifndef SSJOIN_DATAGEN_CONTACT_GEN_H_
#define SSJOIN_DATAGEN_CONTACT_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ssjoin::datagen {

/// Options for the contact-record relation of Example 6
/// ({name, address, city, state, zip, email, phone}-style records used by
/// the soft-FD agreement join).
struct ContactGenOptions {
  size_t num_records = 2000;
  /// Fraction of records that are duplicates of earlier records, with a
  /// random subset of attributes perturbed (so duplicates agree on most but
  /// not all FD source attributes).
  double duplicate_fraction = 0.25;
  /// Number of attributes perturbed in a duplicate (at most).
  size_t max_perturbed_attrs = 1;
  uint64_t seed = 11;
};

/// \brief Contact records as rows of [address, email, phone] (the AEP set of
/// Example 6), plus names and ground truth.
struct ContactDataset {
  std::vector<std::string> names;
  /// One row per record: {address, email, phone}.
  std::vector<std::vector<std::string>> aep_rows;
  /// duplicate_of[i] >= 0 identifies the original of duplicate i.
  std::vector<int64_t> duplicate_of;
};

/// \brief Generates contact records. Deterministic for a fixed seed.
ContactDataset GenerateContacts(const ContactGenOptions& options);

}  // namespace ssjoin::datagen

#endif  // SSJOIN_DATAGEN_CONTACT_GEN_H_
