#include "datagen/error_model.h"

#include <cstddef>

#include "common/string_util.h"

namespace ssjoin::datagen {

namespace {

char RandomLowerAlpha(Rng* rng) {
  return static_cast<char>('a' + rng->Uniform(26));
}

/// Draws a small count with the given mean (geometric-ish; bounded at 6 so
/// a duplicate never degenerates beyond recognition).
size_t DrawEditCount(double mean, Rng* rng) {
  size_t count = 0;
  double p = mean / (1.0 + mean);  // geometric with the requested mean
  while (count < 6 && rng->Bernoulli(p)) ++count;
  return count;
}

}  // namespace

std::string ApplyCharEdit(const std::string& s, Rng* rng) {
  std::string out = s;
  if (out.empty()) {
    out.push_back(RandomLowerAlpha(rng));
    return out;
  }
  switch (rng->Uniform(4)) {
    case 0: {  // insert
      size_t pos = rng->Uniform(out.size() + 1);
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos), RandomLowerAlpha(rng));
      break;
    }
    case 1: {  // delete
      size_t pos = rng->Uniform(out.size());
      out.erase(out.begin() + static_cast<ptrdiff_t>(pos));
      break;
    }
    case 2: {  // substitute
      size_t pos = rng->Uniform(out.size());
      out[pos] = RandomLowerAlpha(rng);
      break;
    }
    default: {  // transpose (two char edits in distance terms, common typo)
      if (out.size() >= 2) {
        size_t pos = rng->Uniform(out.size() - 1);
        std::swap(out[pos], out[pos + 1]);
      } else {
        out[0] = RandomLowerAlpha(rng);
      }
      break;
    }
  }
  return out;
}

std::string CorruptRecord(
    const std::string& record,
    const std::vector<std::pair<std::string, std::string>>& abbrev_pairs,
    const ErrorModelOptions& opts, Rng* rng) {
  std::vector<std::string> tokens = SplitAndDropEmpty(record, " ");

  // Abbreviation convention changes (bidirectional lookup).
  for (std::string& token : tokens) {
    if (!rng->Bernoulli(opts.abbreviation_prob)) continue;
    for (const auto& [abbr, full] : abbrev_pairs) {
      if (token == abbr) {
        token = full;
        break;
      }
      if (token == full) {
        token = abbr;
        break;
      }
    }
  }
  // Token drop.
  if (tokens.size() > 2 && rng->Bernoulli(opts.token_drop_prob)) {
    size_t pos = rng->Uniform(tokens.size());
    tokens.erase(tokens.begin() + static_cast<ptrdiff_t>(pos));
  }
  // Adjacent token swap.
  if (tokens.size() >= 2 && rng->Bernoulli(opts.token_swap_prob)) {
    size_t pos = rng->Uniform(tokens.size() - 1);
    std::swap(tokens[pos], tokens[pos + 1]);
  }
  std::string out = Join(tokens, " ");
  // Character-level typos.
  size_t edits = DrawEditCount(opts.char_edits_mean, rng);
  for (size_t i = 0; i < edits; ++i) out = ApplyCharEdit(out, rng);
  return out;
}

}  // namespace ssjoin::datagen
