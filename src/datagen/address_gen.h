#ifndef SSJOIN_DATAGEN_ADDRESS_GEN_H_
#define SSJOIN_DATAGEN_ADDRESS_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/error_model.h"

namespace ssjoin::datagen {

/// Options for the synthetic customer-address relation — the stand-in for
/// the paper's proprietary 25K-row operational Customer table (§5,
/// substitution documented in DESIGN.md §2).
struct AddressGenOptions {
  size_t num_records = 25000;
  /// Fraction of records that are error-injected near-duplicates of earlier
  /// records (these create the similar pairs the joins must find).
  double duplicate_fraction = 0.25;
  /// Sizes of the long-tail proper-noun pools. Smaller pools = more
  /// frequent-token skew.
  size_t street_name_pool = 400;
  size_t city_pool = 120;
  size_t last_name_pool = 600;
  /// Zipf exponent for street/city sampling (token-frequency skew).
  double zipf_skew = 0.9;
  /// Include the customer name in the record string.
  bool include_name = true;
  ErrorModelOptions errors;
  uint64_t seed = 42;
};

/// \brief The generated relation plus ground truth for recall checks.
struct AddressDataset {
  std::vector<std::string> records;
  /// duplicate_of[i] is the index of the record i was corrupted from, or -1
  /// if i is an original.
  std::vector<int64_t> duplicate_of;

  size_t num_duplicates() const {
    size_t n = 0;
    for (int64_t d : duplicate_of) n += (d >= 0);
    return n;
  }
};

/// \brief Generates a customer-address relation: records like
/// "Mary Crouvel 4821 NE Thorveen Ave Apt 12 Shauner WA 98052", with
/// Zipf-skewed token frequencies and controlled duplicate injection.
/// Deterministic for a fixed seed.
AddressDataset GenerateAddresses(const AddressGenOptions& options);

}  // namespace ssjoin::datagen

#endif  // SSJOIN_DATAGEN_ADDRESS_GEN_H_
