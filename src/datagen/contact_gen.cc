#include "datagen/contact_gen.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/wordlists.h"

namespace ssjoin::datagen {

namespace {

std::string MakePhone(Rng* rng) {
  return StringPrintf("(%03d) %03d-%04d", static_cast<int>(200 + rng->Uniform(799)),
                      static_cast<int>(200 + rng->Uniform(799)),
                      static_cast<int>(rng->Uniform(10000)));
}

std::string ToLowerCopy(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace

ContactDataset GenerateContacts(const ContactGenOptions& options) {
  Rng rng(options.seed);
  const auto& first_names = FirstNames();
  std::vector<std::string> last_names =
      GenerateProperNouns(std::max<size_t>(options.num_records / 4, 50),
                          options.seed ^ 0xF00D);
  ZipfPool streets(GenerateProperNouns(200, options.seed ^ 0xBEEF), 0.8);
  const auto& street_types = StreetTypes();
  static const char* kDomains[] = {"example.com", "mail.net", "corp.org",
                                   "inbox.io"};

  ContactDataset out;
  for (size_t i = 0; i < options.num_records; ++i) {
    if (!out.names.empty() && rng.Bernoulli(options.duplicate_fraction)) {
      size_t source = rng.Uniform(out.names.size());
      std::vector<std::string> row = out.aep_rows[source];
      // Perturb up to max_perturbed_attrs attributes so duplicates agree on
      // the remaining k-of-h sources.
      size_t perturb = rng.Uniform(options.max_perturbed_attrs + 1);
      for (size_t p = 0; p < perturb; ++p) {
        size_t attr = rng.Uniform(row.size());
        switch (attr) {
          case 0:
            row[0] = std::to_string(1 + rng.Uniform(9899)) + ' ' +
                     streets.Sample(&rng) + ' ' +
                     street_types[rng.Uniform(street_types.size())];
            break;
          case 1:
            row[1] = "user" + std::to_string(rng.Uniform(100000)) + '@' +
                     kDomains[rng.Uniform(std::size(kDomains))];
            break;
          default:
            row[2] = MakePhone(&rng);
            break;
        }
      }
      out.names.push_back(out.names[source]);
      out.aep_rows.push_back(std::move(row));
      out.duplicate_of.push_back(static_cast<int64_t>(source));
      continue;
    }
    const std::string& first = first_names[rng.Uniform(first_names.size())];
    const std::string& last = last_names[rng.Uniform(last_names.size())];
    std::string address = std::to_string(1 + rng.Uniform(9899)) + ' ' +
                          streets.Sample(&rng) + ' ' +
                          street_types[rng.Uniform(street_types.size())];
    std::string email = ToLowerCopy(first) + '.' + ToLowerCopy(last) + '@' +
                        kDomains[rng.Uniform(std::size(kDomains))];
    out.names.push_back(first + ' ' + last);
    out.aep_rows.push_back({std::move(address), std::move(email), MakePhone(&rng)});
    out.duplicate_of.push_back(-1);
  }
  return out;
}

}  // namespace ssjoin::datagen
