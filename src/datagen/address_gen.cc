#include "datagen/address_gen.h"

#include "common/string_util.h"
#include "datagen/wordlists.h"

namespace ssjoin::datagen {

namespace {

std::vector<std::pair<std::string, std::string>> AbbreviationPairs() {
  std::vector<std::pair<std::string, std::string>> pairs;
  const auto& abbr = StreetTypes();
  const auto& full = StreetTypesLong();
  for (size_t i = 0; i < abbr.size(); ++i) pairs.emplace_back(abbr[i], full[i]);
  pairs.emplace_back("N", "North");
  pairs.emplace_back("S", "South");
  pairs.emplace_back("E", "East");
  pairs.emplace_back("W", "West");
  pairs.emplace_back("Apt", "Apartment");
  pairs.emplace_back("Ste", "Suite");
  return pairs;
}

}  // namespace

AddressDataset GenerateAddresses(const AddressGenOptions& options) {
  Rng rng(options.seed);
  ZipfPool streets(GenerateProperNouns(options.street_name_pool, options.seed ^ 0x5747),
                   options.zipf_skew);
  ZipfPool cities(GenerateProperNouns(options.city_pool, options.seed ^ 0xC171),
                  options.zipf_skew);
  ZipfPool last_names(GenerateProperNouns(options.last_name_pool, options.seed ^ 0x1A57),
                      options.zipf_skew * 0.7);
  const auto& first_names = FirstNames();
  const auto& street_types = StreetTypes();
  const auto& directions = Directions();
  const auto& units = UnitTypes();
  const auto& states = StateCodes();
  auto abbrev_pairs = AbbreviationPairs();

  AddressDataset out;
  out.records.reserve(options.num_records);
  out.duplicate_of.reserve(options.num_records);
  for (size_t i = 0; i < options.num_records; ++i) {
    bool make_duplicate =
        !out.records.empty() && rng.Bernoulli(options.duplicate_fraction);
    if (make_duplicate) {
      size_t source = rng.Uniform(out.records.size());
      out.records.push_back(
          CorruptRecord(out.records[source], abbrev_pairs, options.errors, &rng));
      out.duplicate_of.push_back(static_cast<int64_t>(source));
      continue;
    }
    std::string rec;
    if (options.include_name) {
      rec += first_names[rng.Uniform(first_names.size())];
      rec += ' ';
      rec += last_names.Sample(&rng);
      rec += ' ';
    }
    rec += std::to_string(1 + rng.Uniform(9899));  // street number
    rec += ' ';
    if (rng.Bernoulli(0.4)) {
      rec += directions[rng.Uniform(directions.size())];
      rec += ' ';
    }
    rec += streets.Sample(&rng);
    rec += ' ';
    rec += street_types[rng.Uniform(street_types.size())];
    rec += ' ';
    if (rng.Bernoulli(0.25)) {
      rec += units[rng.Uniform(units.size())];
      rec += ' ';
      rec += std::to_string(1 + rng.Uniform(99));
      rec += ' ';
    }
    rec += cities.Sample(&rng);
    rec += ' ';
    rec += states[rng.Uniform(states.size())];
    rec += ' ';
    rec += StringPrintf("%05d", static_cast<int>(10000 + rng.Uniform(89999)));
    out.records.push_back(std::move(rec));
    out.duplicate_of.push_back(-1);
  }
  return out;
}

}  // namespace ssjoin::datagen
