#ifndef SSJOIN_SERVE_LOOKUP_SERVICE_H_
#define SSJOIN_SERVE_LOOKUP_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "filter/attr.h"
#include "filter/predicate.h"
#include "index/mutable_index.h"
#include "obs/metrics.h"
#include "serve/metrics.h"
#include "serve/query_cache.h"

namespace ssjoin::serve {

/// Knobs of a LookupService.
struct LookupServiceOptions {
  /// Max requests waiting for dispatch. Admission beyond this is rejected
  /// with Unavailable — the queue is strictly bounded (backpressure), it
  /// never grows with offered load.
  size_t max_queue = 1024;
  /// Max lookups dispatched as one micro-batch.
  size_t max_batch = 64;
  /// Worker threads for batch dispatch (morsel size is forced to 1 so each
  /// lookup is an independently stealable unit).
  exec::ExecContext exec;
  /// Total query-cache entries across all shards; 0 disables caching.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
};

/// \brief A long-lived, thread-safe fuzzy-lookup service over one
/// index::MutableFuzzyIndex — the online face of the paper's §6
/// record-lookup scenario, now over a mutable corpus.
///
/// Concurrency model: callers block in Lookup while a single dispatcher
/// thread drains a bounded admission queue in micro-batches of up to
/// `max_batch` requests, fanning each batch out through exec::ParallelFor.
/// Batching amortizes dispatch overhead under concurrent load without adding
/// latency when idle (a lone request is dispatched immediately as a batch of
/// one).
///
/// Every request captures the index's published epoch at admission and runs
/// against exactly that epoch (LookupAt), so a batch is internally
/// consistent even while writers mutate the index concurrently. The query
/// cache key carries the epoch, which makes a cache hit bit-identical to
/// recomputing against the epoch it names — mutations can never surface a
/// stale hit, because they change the epoch and with it every key.
///
/// Overload policy: when the admission queue is full, Lookup returns
/// Unavailable immediately (load shedding); when a request's deadline
/// expires before its batch is dispatched, it completes with
/// DeadlineExceeded without touching the index. Nothing ever queues
/// unboundedly or blocks forever.
class LookupService {
 public:
  using Match = index::MutableFuzzyIndex::Match;

  /// Takes ownership of a mutable index (created, opened from a data dir, or
  /// upgraded from an immutable snapshot) and starts the dispatcher thread.
  static Result<std::unique_ptr<LookupService>> Create(
      std::unique_ptr<index::MutableFuzzyIndex> index,
      const LookupServiceOptions& options);

  ~LookupService();
  LookupService(const LookupService&) = delete;
  LookupService& operator=(const LookupService&) = delete;

  /// The best `k` matches for `query` (see FuzzyMatchIndex::Lookup), or:
  ///  - Unavailable        if the admission queue is full or shutting down,
  ///  - DeadlineExceeded   if `deadline` elapsed before dispatch; a negative
  ///    `deadline` (already expired at the call) is rejected at admission
  ///    without queueing (deadline zero = no deadline).
  /// `target_recall` in (0, 1] selects the approximate lookup tier below
  /// 1.0 (see MutableFuzzyIndex::LookupAt); it is part of the cache key, so
  /// exact and approximate results never alias. Out-of-range values are
  /// Invalid. A non-empty `filter` restricts matches to records whose
  /// attributes satisfy the predicate (bit-identical to post-filtering an
  /// unfiltered lookup); its canonical JSON joins the cache key, so filtered
  /// and unfiltered results never alias either. Blocks the caller until the
  /// result is ready; safe to call from any number of threads concurrently.
  Result<std::vector<Match>> Lookup(
      const std::string& query, size_t k,
      std::chrono::milliseconds deadline = std::chrono::milliseconds::zero(),
      double target_recall = 1.0,
      const filter::FilterPredicate& filter = {});

  /// Mutations: thin passthroughs to the index. Each publishes a new epoch,
  /// naturally invalidating every cached lookup (the epoch is in the key).
  Status Upsert(uint64_t doc_id, const std::string& value,
                const filter::AttrSet& attrs = {}) {
    return index_->Upsert(doc_id, value, attrs);
  }
  Status Delete(uint64_t doc_id) { return index_->Delete(doc_id); }
  Status BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& records) {
    return index_->BulkLoad(records);
  }
  Status Seal() { return index_->Seal(); }
  Status Compact() { return index_->Compact(); }
  uint64_t epoch() const { return index_->epoch(); }

  /// Global-statistics passthroughs for sharded serving (see the Global API
  /// section of MutableFuzzyIndex); each publishes a new epoch, invalidating
  /// the cache exactly like the local mutations above.
  Status UpsertGlobal(uint64_t doc_id, const std::string& value,
                      const filter::AttrSet& attrs, index::GlobalDelta* delta) {
    return index_->UpsertGlobal(doc_id, value, attrs, delta);
  }
  Status DeleteGlobal(uint64_t doc_id, index::GlobalDelta* delta) {
    return index_->DeleteGlobal(doc_id, delta);
  }
  Status ApplyGlobalDelta(const index::GlobalDelta& delta) {
    return index_->ApplyGlobalDelta(delta);
  }
  Status ResetGlobalStats(const std::vector<std::string>& values) {
    return index_->ResetGlobalStats(values);
  }
  std::vector<std::pair<uint64_t, std::string>> LiveDocs() const {
    return index_->LiveDocs();
  }

  /// The current live value of `doc_id`, if any (display convenience).
  std::optional<std::string> ValueOf(uint64_t doc_id) const {
    return index_->ValueAt(*index_->Snapshot(), doc_id);
  }

  /// The current live attributes of `doc_id`, if live (display convenience).
  std::optional<filter::AttrSet> AttrsOf(uint64_t doc_id) const {
    return index_->AttrsAt(*index_->Snapshot(), doc_id);
  }

  /// Consistent-enough point-in-time counters and latency quantiles.
  StatsSnapshot Stats() const;

  const index::MutableFuzzyIndex& index() const { return *index_; }
  const LookupServiceOptions& options() const { return options_; }

  /// Stops accepting requests, fails queued ones with Unavailable and joins
  /// the dispatcher. Idempotent; called by the destructor.
  void Shutdown();

  /// Test hook invoked by the dispatcher after claiming a batch, before
  /// running it — lets tests hold the dispatcher to saturate the admission
  /// queue deterministically. Not for production use.
  void SetDispatchHookForTest(std::function<void()> hook);

  /// Test hook invoked with each batch item's index right before that item
  /// executes — lets tests stall one item and observe the per-item deadline
  /// recheck on the next. Not for production use.
  void SetItemHookForTest(std::function<void(size_t)> hook);

 private:
  struct Pending {
    std::string query;
    std::string cache_key;
    /// The epoch view captured at admission; the lookup runs against it so
    /// the result matches the epoch its cache key names.
    std::shared_ptr<const index::EpochState> state;
    size_t k;
    double target_recall;
    filter::FilterPredicate filter;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline;
    std::promise<Result<std::vector<Match>>> promise;
  };

  LookupService(std::unique_ptr<index::MutableFuzzyIndex> index,
                const LookupServiceOptions& options);

  /// obs::Registry provider: mirrors this service's counters, queue depth
  /// and latency/lifecycle histograms into the snapshot as `serve.*`.
  void CollectMetrics(std::vector<obs::MetricPoint>* out) const;

  /// Cache key: the query's token sequence (unit-separator joined) plus k,
  /// alpha, the epoch, the target recall and (when non-empty) the filter's
  /// canonical JSON — exactly the inputs Lookup's result depends on.
  std::string CacheKey(const std::string& query, size_t k, uint64_t epoch,
                       double target_recall,
                       const filter::FilterPredicate& filter) const;

  void DispatcherLoop();
  void RunBatch(std::vector<Pending>* batch);
  /// Purges cache entries from epochs below `epoch` the first time that
  /// epoch is observed (every mutation path funnels through the next
  /// Lookup's Snapshot, so no separate publication callback is needed).
  void PurgeStaleCache(uint64_t epoch);

  std::unique_ptr<index::MutableFuzzyIndex> index_;
  LookupServiceOptions options_;
  QueryCache cache_;
  ServiceMetrics metrics_;
  std::atomic<uint64_t> provider_id_{0};  // obs::Registry provider handle

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::function<void()> dispatch_hook_;
  std::function<void(size_t)> item_hook_;
  /// Highest epoch the cache has been purged up to (see PurgeStaleCache).
  std::atomic<uint64_t> purged_epoch_{0};
  std::thread dispatcher_;
};

}  // namespace ssjoin::serve

#endif  // SSJOIN_SERVE_LOOKUP_SERVICE_H_
