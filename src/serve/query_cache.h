#ifndef SSJOIN_SERVE_QUERY_CACHE_H_
#define SSJOIN_SERVE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "index/mutable_index.h"

namespace ssjoin::serve {

/// \brief Sharded LRU cache of lookup results, keyed on the *normalized*
/// query plus (k, alpha, epoch).
///
/// Normalization (LookupService::CacheKey) maps a raw query to its token
/// sequence, so any two strings that tokenize identically — and therefore
/// produce bit-identical Lookup results — share one entry. The key also
/// carries the index epoch the result was computed against: a mutation
/// publishes a new epoch, so stale entries become unreachable immediately
/// rather than ever being served. Unreachable is not free, though — a stale
/// entry still holds a capacity slot until LRU pressure happens to reach it,
/// so each entry also records its epoch as a plain field and
/// PurgeEpochsBelow() reclaims every superseded entry the moment a new epoch
/// is observed (it also raises a floor that drops late Put()s from old
/// in-flight requests). Sharding by key
/// hash keeps the lock a short per-shard critical section instead of a
/// service-wide serialization point; each shard maintains its own intrusive
/// LRU list. Capacity is split exactly across shards — floor(capacity/shards)
/// entries each, with the remainder spread one-apiece over the first shards,
/// so the shard capacities always sum to `capacity`. Eviction is approximate
/// LRU at the cache level but exact per shard.
class QueryCache {
 public:
  /// `capacity` = max total entries (0 disables the cache entirely);
  /// `shards` is rounded up to a power of two.
  QueryCache(size_t capacity, size_t shards);

  bool enabled() const { return !shards_.empty(); }

  /// The cached matches for `key`, refreshing its recency; nullopt on miss.
  std::optional<std::vector<index::MutableFuzzyIndex::Match>> Get(
      const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the shard's LRU tail if full.
  /// `epoch` is the index epoch the result was computed against; an entry
  /// older than the last PurgeEpochsBelow() floor is dropped on arrival (a
  /// slow in-flight request must not re-park a stale result).
  void Put(const std::string& key, uint64_t epoch,
           std::vector<index::MutableFuzzyIndex::Match> matches);

  /// Removes every entry whose epoch is below `epoch` and raises the floor
  /// future Put()s are checked against. Called on epoch publication; stale
  /// entries stop consuming capacity instead of waiting for LRU pressure.
  void PurgeEpochsBelow(uint64_t epoch);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  uint64_t stale_purged() const {
    return stale_purged_.load(std::memory_order_relaxed);
  }

  size_t size() const;

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    std::vector<index::MutableFuzzyIndex::Match> matches;
  };
  struct Shard {
    std::mutex mu;
    size_t capacity = 0;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[HashString(key) & shard_mask_];
  }

  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> stale_purged_{0};
  /// Highest epoch ever passed to PurgeEpochsBelow; Put()s below it drop.
  std::atomic<uint64_t> min_epoch_{0};
};

}  // namespace ssjoin::serve

#endif  // SSJOIN_SERVE_QUERY_CACHE_H_
