#ifndef SSJOIN_SERVE_QUERY_CACHE_H_
#define SSJOIN_SERVE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "index/mutable_index.h"

namespace ssjoin::serve {

/// \brief Sharded LRU cache of lookup results, keyed on the *normalized*
/// query plus (k, alpha, epoch).
///
/// Normalization (LookupService::CacheKey) maps a raw query to its token
/// sequence, so any two strings that tokenize identically — and therefore
/// produce bit-identical Lookup results — share one entry. The key also
/// carries the index epoch the result was computed against: a mutation
/// publishes a new epoch, so stale entries become unreachable immediately
/// (and age out of the LRU) rather than ever being served. Sharding by key
/// hash keeps the lock a short per-shard critical section instead of a
/// service-wide serialization point; each shard maintains its own intrusive
/// LRU list. Capacity is split exactly across shards — floor(capacity/shards)
/// entries each, with the remainder spread one-apiece over the first shards,
/// so the shard capacities always sum to `capacity`. Eviction is approximate
/// LRU at the cache level but exact per shard.
class QueryCache {
 public:
  /// `capacity` = max total entries (0 disables the cache entirely);
  /// `shards` is rounded up to a power of two.
  QueryCache(size_t capacity, size_t shards);

  bool enabled() const { return !shards_.empty(); }

  /// The cached matches for `key`, refreshing its recency; nullopt on miss.
  std::optional<std::vector<index::MutableFuzzyIndex::Match>> Get(
      const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the shard's LRU tail if full.
  void Put(const std::string& key,
           std::vector<index::MutableFuzzyIndex::Match> matches);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

  size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::vector<index::MutableFuzzyIndex::Match> matches;
  };
  struct Shard {
    std::mutex mu;
    size_t capacity = 0;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[HashString(key) & shard_mask_];
  }

  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace ssjoin::serve

#endif  // SSJOIN_SERVE_QUERY_CACHE_H_
