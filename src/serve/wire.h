#ifndef SSJOIN_SERVE_WIRE_H_
#define SSJOIN_SERVE_WIRE_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace ssjoin::serve {

/// \brief The newline-delimited-JSON wire protocol of ssjoin_served.
///
/// Requests are flat JSON objects, one per line:
///
///   {"op": "lookup", "query": "Mcrosoft Corp", "k": 3}
///   {"op": "lookup", "query": "...", "k": 1, "deadline_ms": 50}
///   {"op": "stats"}
///   {"op": "ping"}
///   {"op": "shutdown"}
///
/// Responses are one JSON object per line: {"ok": true, ...} on success or
/// {"ok": false, "error": "..."} on failure. Only the flat scalar subset the
/// protocol needs is implemented here — no nesting on the request side.

/// A scalar JSON value of a request field.
struct JsonScalar {
  enum class Type { kString, kNumber, kBool, kNull } type = Type::kNull;
  std::string str;     // kString
  double num = 0.0;    // kNumber
  bool boolean = false;  // kBool
};

/// Parses one flat JSON object (string/number/bool/null values only;
/// rejects nested arrays/objects). Keys must be unique.
Result<std::map<std::string, JsonScalar>> ParseJsonObject(std::string_view line);

/// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

}  // namespace ssjoin::serve

#endif  // SSJOIN_SERVE_WIRE_H_
