#ifndef SSJOIN_SERVE_WIRE_H_
#define SSJOIN_SERVE_WIRE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "filter/attr.h"
#include "filter/predicate.h"

namespace ssjoin::serve {

/// \brief The newline-delimited-JSON wire protocol of ssjoin_served.
///
/// Requests are JSON objects, one per line:
///
///   {"op": "lookup", "query": "Mcrosoft Corp", "k": 3}
///   {"op": "lookup", "query": "...", "k": 1, "deadline_ms": 50}
///   {"op": "lookup", "query": "...", "filter": {"country": ["DE", "FR"]}}
///   {"op": "upsert", "id": 7, "value": "...", "attrs": {"country": "DE"}}
///   {"op": "stats"}
///   {"op": "ping"}
///   {"op": "shutdown"}
///
/// Responses are one JSON object per line: {"ok": true, ...} on success or
/// {"ok": false, "error": "..."} on failure. Exactly ONE level of nesting is
/// supported on the request side — object fields whose values are scalars or
/// arrays of scalars, the shape of "filter" and "attrs"; responses stay flat.

/// A scalar JSON value of a request field.
struct JsonScalar {
  enum class Type { kString, kNumber, kBool, kNull } type = Type::kNull;
  std::string str;     // kString
  double num = 0.0;    // kNumber
  bool boolean = false;  // kBool
};

/// A field of a nested request object: one scalar, or an array of scalars.
struct JsonNested {
  bool is_array = false;
  std::vector<JsonScalar> items;  // exactly one element when !is_array
};

/// A top-level request field: a scalar, or — one nesting level — an object
/// of JsonNested values ("filter": {...}, "attrs": {...}).
struct JsonValue {
  bool is_object = false;
  JsonScalar scalar;                          // valid when !is_object
  std::map<std::string, JsonNested> object;   // valid when is_object
};

/// Parses one flat JSON object (string/number/bool/null values only;
/// rejects nested arrays/objects). Keys must be unique.
Result<std::map<std::string, JsonScalar>> ParseJsonObject(std::string_view line);

/// Parses one request object allowing a single nesting level: values may be
/// scalars, or objects whose values are scalars or arrays of scalars.
/// Deeper nesting and top-level arrays are rejected. Keys must be unique at
/// both levels.
Result<std::map<std::string, JsonValue>> ParseJsonRequest(std::string_view line);

/// Converts a request's "filter" object into a predicate. Each key is one
/// conjunct name — a leading '!' marks NOT-IN — and its value is the IN-set:
/// an array of scalars, or a bare scalar as an IN-set of one. Strings map to
/// string attributes, integral numbers to int64; bools, nulls, non-integral
/// numbers, empty arrays and duplicate (name, negated) conjuncts are
/// Invalid. Attribute-name validation (control bytes, length) applies.
Result<filter::FilterPredicate> FilterFromWire(const JsonValue& value);

/// Converts a request's "attrs" object into a record attribute set. Each key
/// is one attribute name and its value one scalar (arrays are Invalid —
/// records hold at most one value per attribute). The hardened byte rules
/// are enforced here, at upsert time, so malformed names and values never
/// reach the WAL.
Result<filter::AttrSet> AttrsFromWire(const JsonValue& value);

/// Renders an attribute set as the JSON object AttrsFromWire parses back:
/// {"name": "v", "n": 1}, entries sorted by name, ints as JSON numbers.
std::string AttrsToJson(const filter::AttrSet& attrs);

/// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

}  // namespace ssjoin::serve

#endif  // SSJOIN_SERVE_WIRE_H_
