#include "serve/snapshot.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/atomic_file.h"
#include "common/payload.h"
#include "common/hash.h"

namespace ssjoin::serve {

namespace {

uint64_t PayloadChecksum(const char* data, size_t size) {
  return HashString(std::string_view(data, size));
}

std::string EncodePayload(const simjoin::FuzzyMatchIndex& index,
                          uint32_t version) {
  common::PayloadWriter w;
  const auto& options = index.options();
  w.U8(options.word_tokens ? 1 : 0);
  w.U64(options.q);
  w.F64(options.alpha);
  w.F64(index.unseen_token_weight());

  const auto& reference = index.reference_strings();
  w.U64(reference.size());
  for (const std::string& s : reference) w.Str(s);

  const auto& dict = index.dictionary();
  w.U64(dict.num_elements());
  for (text::TokenId id = 0; id < dict.num_elements(); ++id) {
    w.Str(dict.TokenOf(id));
    w.U32(dict.OrdinalOf(id));
    w.U64(dict.DocFrequency(id));
  }
  w.U64(dict.num_documents());

  w.Vec(index.weights());
  w.Vec(index.order().ranks());

  const auto& sets = index.sets();
  if (version >= 2) {
    // v2: the CSR store's flat arrays verbatim.
    w.Vec(sets.store.offsets());
    w.Vec(sets.store.token_ids());
    w.Vec(sets.store.weights());
  } else {
    // v1: per-group length-prefixed vectors (kept for rollback writes).
    w.U64(sets.num_groups());
    for (core::GroupId g = 0; g < sets.num_groups(); ++g) {
      core::SetView set = sets.set(g);
      std::vector<text::TokenId> elems(set.begin(), set.end());
      w.Vec(elems);
    }
  }
  w.Vec(sets.norms);
  w.Vec(sets.set_weights);

  w.Vec(index.prefix_offsets());
  w.Vec(index.prefix_postings());
  return w.buffer();
}

Result<simjoin::FuzzyMatchIndex> DecodePayload(const char* data, size_t size,
                                               uint32_t version) {
  common::PayloadReader r(data, size);
  simjoin::FuzzyMatchIndex::Options options;
  uint8_t word_tokens = 0;
  uint64_t q = 0;
  SSJOIN_RETURN_NOT_OK(r.U8(&word_tokens));
  SSJOIN_RETURN_NOT_OK(r.U64(&q));
  SSJOIN_RETURN_NOT_OK(r.F64(&options.alpha));
  options.word_tokens = word_tokens != 0;
  options.q = static_cast<size_t>(q);
  double unseen_weight = 0.0;
  SSJOIN_RETURN_NOT_OK(r.F64(&unseen_weight));

  uint64_t num_reference = 0;
  SSJOIN_RETURN_NOT_OK(r.U64(&num_reference));
  std::vector<std::string> reference(static_cast<size_t>(num_reference));
  for (auto& s : reference) SSJOIN_RETURN_NOT_OK(r.Str(&s));

  uint64_t num_entries = 0;
  SSJOIN_RETURN_NOT_OK(r.U64(&num_entries));
  std::vector<text::TokenDictionary::EntryData> entries(
      static_cast<size_t>(num_entries));
  for (auto& e : entries) {
    SSJOIN_RETURN_NOT_OK(r.Str(&e.token));
    SSJOIN_RETURN_NOT_OK(r.U32(&e.ordinal));
    SSJOIN_RETURN_NOT_OK(r.U64(&e.doc_frequency));
  }
  uint64_t num_documents = 0;
  SSJOIN_RETURN_NOT_OK(r.U64(&num_documents));
  SSJOIN_ASSIGN_OR_RETURN(
      text::TokenDictionary dict,
      text::TokenDictionary::Restore(std::move(entries), num_documents));

  core::WeightVector weights;
  SSJOIN_RETURN_NOT_OK(r.Vec(&weights));
  std::vector<uint32_t> ranks;
  SSJOIN_RETURN_NOT_OK(r.Vec(&ranks));
  SSJOIN_ASSIGN_OR_RETURN(core::ElementOrder order,
                          core::ElementOrder::FromRanks(std::move(ranks)));

  core::SetsRelation sets;
  if (version >= 2) {
    // v2: decode-and-validate of the CSR store's flat arrays.
    std::vector<uint32_t> offsets;
    std::vector<text::TokenId> token_ids;
    std::vector<double> element_weights;
    SSJOIN_RETURN_NOT_OK(r.Vec(&offsets));
    SSJOIN_RETURN_NOT_OK(r.Vec(&token_ids));
    SSJOIN_RETURN_NOT_OK(r.Vec(&element_weights));
    SSJOIN_ASSIGN_OR_RETURN(
        sets.store,
        core::SetStore::FromParts(std::move(offsets), std::move(token_ids),
                                  std::move(element_weights)));
  } else {
    // v1: per-group vectors, re-packed into the flat store.
    uint64_t num_groups = 0;
    SSJOIN_RETURN_NOT_OK(r.U64(&num_groups));
    std::vector<text::TokenId> elems;
    for (uint64_t g = 0; g < num_groups; ++g) {
      SSJOIN_RETURN_NOT_OK(r.Vec(&elems));
      sets.store.AppendSet(elems);
    }
  }
  SSJOIN_RETURN_NOT_OK(r.Vec(&sets.norms));
  SSJOIN_RETURN_NOT_OK(r.Vec(&sets.set_weights));

  std::vector<uint32_t> prefix_offsets;
  std::vector<core::GroupId> prefix_postings;
  SSJOIN_RETURN_NOT_OK(r.Vec(&prefix_offsets));
  SSJOIN_RETURN_NOT_OK(r.Vec(&prefix_postings));
  if (!r.AtEnd()) {
    return Status::IOError("snapshot payload has trailing bytes");
  }

  return simjoin::FuzzyMatchIndex::FromParts(
      options, std::move(reference), std::move(dict), std::move(weights),
      unseen_weight, std::move(order), std::move(sets),
      std::move(prefix_offsets), std::move(prefix_postings));
}

}  // namespace

Status SaveSnapshot(const simjoin::FuzzyMatchIndex& index,
                    const std::string& path) {
  return SaveSnapshotAtVersion(index, path, kSnapshotVersion);
}

Status SaveSnapshotAtVersion(const simjoin::FuzzyMatchIndex& index,
                             const std::string& path, uint32_t version) {
  if (version != kSnapshotVersionNested && version != kSnapshotVersion) {
    return Status::Invalid("unsupported snapshot version " +
                           std::to_string(version));
  }
  std::string payload = EncodePayload(index, version);
  uint64_t checksum = PayloadChecksum(payload.data(), payload.size());

  std::string bytes;
  bytes.reserve(kSnapshotHeaderSize + payload.size() + sizeof(checksum));
  bytes.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  uint32_t flags = 0;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&flags), sizeof(flags));
  bytes.append(payload);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return common::WriteFileAtomic(path, bytes);
}

Result<simjoin::FuzzyMatchIndex> LoadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open snapshot '" + path + "'");
  }
  std::string bytes;
  char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("error reading snapshot '" + path + "'");
  }

  if (bytes.size() < kSnapshotHeaderSize + sizeof(uint64_t)) {
    return Status::IOError("snapshot '" + path + "' is truncated");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Invalid("'" + path + "' is not a ssjoin snapshot (bad magic)");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  if (version != kSnapshotVersionNested && version != kSnapshotVersion) {
    return Status::Invalid("unsupported snapshot version " +
                           std::to_string(version) + " (expected <= " +
                           std::to_string(kSnapshotVersion) + ")");
  }

  const char* payload = bytes.data() + kSnapshotHeaderSize;
  size_t payload_size = bytes.size() - kSnapshotHeaderSize - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + kSnapshotHeaderSize + payload_size,
              sizeof(stored_checksum));
  if (PayloadChecksum(payload, payload_size) != stored_checksum) {
    return Status::IOError("snapshot '" + path + "' checksum mismatch");
  }
  return DecodePayload(payload, payload_size, version);
}

Result<std::unique_ptr<index::MutableFuzzyIndex>> UpgradeSnapshotToMutable(
    const std::string& path, index::MutableIndexOptions options) {
  SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex loaded, LoadSnapshot(path));
  options.match = loaded.options();
  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                          index::MutableFuzzyIndex::Create(options));
  std::vector<std::pair<uint64_t, std::string>> records;
  records.reserve(loaded.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    records.emplace_back(i, loaded.reference(static_cast<uint32_t>(i)));
  }
  SSJOIN_RETURN_NOT_OK(index->BulkLoad(records));
  SSJOIN_RETURN_NOT_OK(index->Seal());
  return index;
}

}  // namespace ssjoin::serve
