#include "serve/metrics.h"

#include <algorithm>
#include <cstdio>

namespace ssjoin::serve {

double LatencyHistogram::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the buckets once; concurrent Records may land in between the
  // count_ read and the bucket reads, so clamp rather than assume equality.
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  double target = q * static_cast<double>(total);
  uint64_t running = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(running + counts[b]) >= target) {
      double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << b);
      double hi = static_cast<double>(uint64_t{1} << (b + 1));
      // The recorded maximum is the distribution's true upper edge: it
      // tightens interpolation inside the maximum's own bucket and replaces
      // the overflow bucket's nominal edge entirely (that bucket absorbs
      // everything above ~2.3 hours, so 2^33us would understate it).
      double max_us = static_cast<double>(max_micros());
      if (b + 1 == kBuckets || (max_us >= lo && max_us < hi)) {
        hi = std::max(lo, max_us);
      }
      double frac = (target - static_cast<double>(running)) /
                    static_cast<double>(counts[b]);
      return lo + frac * (hi - lo);
    }
    running += counts[b];
  }
  return static_cast<double>(max_micros());
}

StatsSnapshot SnapshotMetrics(const ServiceMetrics& m) {
  StatsSnapshot s;
  s.requests = m.requests.load(std::memory_order_relaxed);
  s.rejected_overload = m.rejected_overload.load(std::memory_order_relaxed);
  s.rejected_deadline = m.rejected_deadline.load(std::memory_order_relaxed);
  s.cache_hits = m.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = m.cache_misses.load(std::memory_order_relaxed);
  s.batches = m.batches.load(std::memory_order_relaxed);
  s.batched_lookups = m.batched_lookups.load(std::memory_order_relaxed);
  s.latency_count = m.latency.count();
  if (s.latency_count > 0) {
    s.latency_mean_us = static_cast<double>(m.latency.sum_micros()) /
                        static_cast<double>(s.latency_count);
  }
  s.latency_p50_us = m.latency.Quantile(0.50);
  s.latency_p95_us = m.latency.Quantile(0.95);
  s.latency_p99_us = m.latency.Quantile(0.99);
  s.latency_max_us = m.latency.max_micros();
  return s;
}

std::string StatsSnapshot::ToJson() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"requests\": %llu, \"rejected_overload\": %llu, "
      "\"rejected_deadline\": %llu, \"cache_hits\": %llu, "
      "\"cache_misses\": %llu, \"cache_evictions\": %llu, "
      "\"batches\": %llu, \"batched_lookups\": %llu, \"queue_depth\": %llu, "
      "\"latency_us\": {\"count\": %llu, \"mean\": %.1f, \"p50\": %.1f, "
      "\"p95\": %.1f, \"p99\": %.1f, \"max\": %llu}}",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(rejected_overload),
      static_cast<unsigned long long>(rejected_deadline),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batched_lookups),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(latency_count), latency_mean_us,
      latency_p50_us, latency_p95_us, latency_p99_us,
      static_cast<unsigned long long>(latency_max_us));
  return buf;
}

}  // namespace ssjoin::serve
