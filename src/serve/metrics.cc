#include "serve/metrics.h"

#include <algorithm>
#include <cstdio>

namespace ssjoin::serve {

StatsSnapshot SnapshotMetrics(const ServiceMetrics& m) {
  StatsSnapshot s;
  s.requests = m.requests.load(std::memory_order_relaxed);
  s.rejected_overload = m.rejected_overload.load(std::memory_order_relaxed);
  s.rejected_deadline = m.rejected_deadline.load(std::memory_order_relaxed);
  s.cache_hits = m.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = m.cache_misses.load(std::memory_order_relaxed);
  s.batches = m.batches.load(std::memory_order_relaxed);
  s.batched_lookups = m.batched_lookups.load(std::memory_order_relaxed);
  s.latency_count = m.latency.count();
  if (s.latency_count > 0) {
    s.latency_mean_us = static_cast<double>(m.latency.sum_micros()) /
                        static_cast<double>(s.latency_count);
  }
  s.latency_p50_us = m.latency.Quantile(0.50);
  s.latency_p95_us = m.latency.Quantile(0.95);
  s.latency_p99_us = m.latency.Quantile(0.99);
  s.latency_max_us = m.latency.max_micros();
  return s;
}

std::string StatsSnapshot::ToJson() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"requests\": %llu, \"rejected_overload\": %llu, "
      "\"rejected_deadline\": %llu, \"cache_hits\": %llu, "
      "\"cache_misses\": %llu, \"cache_evictions\": %llu, "
      "\"cache_stale_purged\": %llu, "
      "\"batches\": %llu, \"batched_lookups\": %llu, \"queue_depth\": %llu, "
      "\"latency_us\": {\"count\": %llu, \"mean\": %.1f, \"p50\": %.1f, "
      "\"p95\": %.1f, \"p99\": %.1f, \"max\": %llu}}",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(rejected_overload),
      static_cast<unsigned long long>(rejected_deadline),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(cache_stale_purged),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batched_lookups),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(latency_count), latency_mean_us,
      latency_p50_us, latency_p95_us, latency_p99_us,
      static_cast<unsigned long long>(latency_max_us));
  return buf;
}

}  // namespace ssjoin::serve
