#ifndef SSJOIN_SERVE_SNAPSHOT_H_
#define SSJOIN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "index/mutable_index.h"
#include "simjoin/fuzzy_match.h"

namespace ssjoin::serve {

/// \name FuzzyMatchIndex snapshots
///
/// A snapshot is the complete materialized state of a FuzzyMatchIndex —
/// options, reference strings, token dictionary, IDF weights, element order,
/// canonical sets and the prefix inverted index — in one binary file, so a
/// server warm-starts by memcpy-style decoding instead of re-tokenizing and
/// re-indexing the reference table.
///
/// Layout (all integers little-endian, doubles IEEE-754):
///
///   [0,  8)  magic "SSJSNAPS"
///   [8, 12)  format version (uint32)
///   [12,16)  reserved flags (uint32, zero)
///   [16, N)  payload: length-prefixed sections in fixed order
///   [N, N+8) FNV-1a checksum (uint64) over the payload bytes
///
/// Version history for the sets section (everything else is unchanged):
///   v1  per-group length-prefixed element vectors
///   v2  the CSR SetStore's flat arrays verbatim — offsets[num_groups+1],
///       token_ids, optional element weights — so load is a decode-and-
///       validate of three contiguous buffers instead of per-group
///       reconstruction.
///
/// Load verifies magic, version and checksum before decoding and bounds-
/// checks every read, so a truncated, corrupted or future-versioned file
/// yields a clean Status error and never a partially-initialized index.
/// Both versions are readable; SaveSnapshot always writes the current one.
/// @{

inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kSnapshotVersionNested = 1;
inline constexpr char kSnapshotMagic[8] = {'S', 'S', 'J', 'S', 'N', 'A', 'P', 'S'};
inline constexpr size_t kSnapshotHeaderSize = 16;

/// Serializes `index` to `path` (atomically: written to a temp sibling and
/// renamed into place, so readers never observe a half-written snapshot).
Status SaveSnapshot(const simjoin::FuzzyMatchIndex& index, const std::string& path);

/// Serializes `index` at an explicit format version (v1 or v2) — the
/// back-compat escape hatch used by rollback tooling and the v1→v2
/// compatibility tests.
Status SaveSnapshotAtVersion(const simjoin::FuzzyMatchIndex& index,
                             const std::string& path, uint32_t version);

/// Deserializes a snapshot previously written by SaveSnapshot (any
/// supported version).
Result<simjoin::FuzzyMatchIndex> LoadSnapshot(const std::string& path);

/// Upgrades a v1/v2 immutable snapshot into a mutable index: the reference
/// strings are bulk-loaded (row index becomes the doc_id) and sealed into a
/// single generation. `options.match` is overridden by the snapshot's own
/// match options; with `options.data_dir` set the result is immediately
/// durable in the v3 manifest + segment format. Lookup results are bitwise
/// identical to the immutable index's (modulo Match::id replacing
/// Match::ref_index) — the index subsystem's equivalence contract.
Result<std::unique_ptr<index::MutableFuzzyIndex>> UpgradeSnapshotToMutable(
    const std::string& path, index::MutableIndexOptions options);

/// @}

}  // namespace ssjoin::serve

#endif  // SSJOIN_SERVE_SNAPSHOT_H_
