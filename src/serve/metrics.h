#ifndef SSJOIN_SERVE_METRICS_H_
#define SSJOIN_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ssjoin::serve {

/// \brief Fixed-bucket log-scale latency histogram, safe for concurrent
/// Record calls (relaxed atomics; serving metrics tolerate torn snapshots).
///
/// Bucket b covers [2^b, 2^(b+1)) microseconds, with bucket 0 also absorbing
/// sub-microsecond samples and the last bucket absorbing everything above
/// ~2.3 hours. Quantiles interpolate linearly inside the hit bucket, which
/// bounds the relative error by the bucket width (a factor of 2) — plenty
/// for p50/p95/p99 service dashboards.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 33;

  void Record(uint64_t micros) {
    size_t b = 0;
    while (b + 1 < kBuckets && (uint64_t{1} << (b + 1)) <= micros) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
    uint64_t prev = max_micros_.load(std::memory_order_relaxed);
    while (prev < micros &&
           !max_micros_.compare_exchange_weak(prev, micros,
                                              std::memory_order_relaxed)) {
    }
  }

  /// The latency at quantile `q` in [0, 1], in microseconds; 0 when empty.
  double Quantile(double q) const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const { return sum_micros_.load(std::memory_order_relaxed); }
  uint64_t max_micros() const { return max_micros_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

/// \brief Request counters and latency for one LookupService, updated
/// concurrently by client threads and the dispatcher.
struct ServiceMetrics {
  std::atomic<uint64_t> requests{0};            // answered lookups: ok + deadline-failed
  std::atomic<uint64_t> rejected_overload{0};   // admission queue full
  std::atomic<uint64_t> rejected_deadline{0};   // expired at admission or before dispatch
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> batches{0};             // micro-batches dispatched
  std::atomic<uint64_t> batched_lookups{0};     // lookups across all batches
  LatencyHistogram latency;
};

/// A plain-value copy of the counters plus derived latency quantiles, taken
/// at one instant (not atomically across fields).
struct StatsSnapshot {
  uint64_t requests = 0;
  uint64_t rejected_overload = 0;
  uint64_t rejected_deadline = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t batches = 0;
  uint64_t batched_lookups = 0;
  uint64_t queue_depth = 0;
  uint64_t latency_count = 0;
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  uint64_t latency_max_us = 0;

  /// Renders the snapshot as one JSON object (the `stats` wire response).
  std::string ToJson() const;
};

/// Fills the metric-derived fields of a snapshot (callers add cache/queue
/// figures they own).
StatsSnapshot SnapshotMetrics(const ServiceMetrics& metrics);

}  // namespace ssjoin::serve

#endif  // SSJOIN_SERVE_METRICS_H_
