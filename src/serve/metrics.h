#ifndef SSJOIN_SERVE_METRICS_H_
#define SSJOIN_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace ssjoin::serve {

/// \brief Log-scale latency histogram in microseconds — the serve layer's
/// historical name for obs::Histogram (which it seeded; the implementation
/// now lives in src/obs), with micros-flavored accessors kept for callers.
class LatencyHistogram : public obs::Histogram {
 public:
  uint64_t sum_micros() const { return sum(); }
  uint64_t max_micros() const { return max_value(); }
};

/// \brief Request counters and latency for one LookupService, updated
/// concurrently by client threads and the dispatcher.
///
/// Metrics are value-owned per service (tests assert exact per-instance
/// counts); LookupService mirrors them into the global obs::Registry through
/// a provider callback under `serve.*` names.
struct ServiceMetrics {
  std::atomic<uint64_t> requests{0};            // answered lookups: ok + deadline-failed
  std::atomic<uint64_t> rejected_overload{0};   // admission queue full
  std::atomic<uint64_t> rejected_deadline{0};   // expired at admission or before dispatch
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> batches{0};             // micro-batches dispatched
  std::atomic<uint64_t> batched_lookups{0};     // lookups across all batches
  LatencyHistogram latency;
  /// Request lifecycle spans: admission (Lookup entry → enqueued), queue
  /// wait (enqueued → batch claimed), lookup (index probe), reply (cache
  /// fill + caller wakeup, per batch).
  LatencyHistogram span_admission;
  LatencyHistogram span_queue_wait;
  LatencyHistogram span_lookup;
  LatencyHistogram span_reply;
};

/// A plain-value copy of the counters plus derived latency quantiles, taken
/// at one instant (not atomically across fields).
struct StatsSnapshot {
  uint64_t requests = 0;
  uint64_t rejected_overload = 0;
  uint64_t rejected_deadline = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  /// Stale-epoch entries reclaimed by purge-on-publication (vs. aged out).
  uint64_t cache_stale_purged = 0;
  uint64_t batches = 0;
  uint64_t batched_lookups = 0;
  uint64_t queue_depth = 0;
  uint64_t latency_count = 0;
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  uint64_t latency_max_us = 0;

  /// Renders the snapshot as one JSON object (the `stats` wire response).
  std::string ToJson() const;
};

/// Fills the metric-derived fields of a snapshot (callers add cache/queue
/// figures they own).
StatsSnapshot SnapshotMetrics(const ServiceMetrics& metrics);

}  // namespace ssjoin::serve

#endif  // SSJOIN_SERVE_METRICS_H_
