#include "serve/lookup_service.h"

#include <utility>

#include "exec/parallel_for.h"

namespace ssjoin::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count());
}

}  // namespace

Result<std::unique_ptr<LookupService>> LookupService::Create(
    std::unique_ptr<index::MutableFuzzyIndex> index,
    const LookupServiceOptions& options) {
  if (index == nullptr) {
    return Status::Invalid("index must not be null");
  }
  if (options.max_queue == 0) {
    return Status::Invalid("max_queue must be at least 1");
  }
  if (options.max_batch == 0) {
    return Status::Invalid("max_batch must be at least 1");
  }
  std::unique_ptr<LookupService> service(
      new LookupService(std::move(index), options));
  service->provider_id_.store(obs::Registry::Global().RegisterProvider(
      [s = service.get()](std::vector<obs::MetricPoint>* out) {
        s->CollectMetrics(out);
      }));
  service->dispatcher_ = std::thread([s = service.get()] { s->DispatcherLoop(); });
  return service;
}

void LookupService::CollectMetrics(std::vector<obs::MetricPoint>* out) const {
  StatsSnapshot s = Stats();
  out->push_back(obs::MetricPoint::FromCounter("serve.requests", s.requests));
  out->push_back(
      obs::MetricPoint::FromCounter("serve.rejected_overload", s.rejected_overload));
  out->push_back(
      obs::MetricPoint::FromCounter("serve.rejected_deadline", s.rejected_deadline));
  out->push_back(obs::MetricPoint::FromCounter("serve.cache_hits", s.cache_hits));
  out->push_back(obs::MetricPoint::FromCounter("serve.cache_misses", s.cache_misses));
  out->push_back(
      obs::MetricPoint::FromCounter("serve.cache_evictions", s.cache_evictions));
  out->push_back(obs::MetricPoint::FromCounter("serve.cache_stale_purged",
                                               s.cache_stale_purged));
  out->push_back(obs::MetricPoint::FromCounter("serve.batches", s.batches));
  out->push_back(
      obs::MetricPoint::FromCounter("serve.batched_lookups", s.batched_lookups));
  out->push_back(obs::MetricPoint::FromGauge(
      "serve.queue_depth", static_cast<int64_t>(s.queue_depth)));
  out->push_back(
      obs::MetricPoint::FromHistogram("serve.latency_us", metrics_.latency));
  out->push_back(obs::MetricPoint::FromHistogram("serve.span.admission_us",
                                                 metrics_.span_admission));
  out->push_back(obs::MetricPoint::FromHistogram("serve.span.queue_wait_us",
                                                 metrics_.span_queue_wait));
  out->push_back(
      obs::MetricPoint::FromHistogram("serve.span.lookup_us", metrics_.span_lookup));
  out->push_back(
      obs::MetricPoint::FromHistogram("serve.span.reply_us", metrics_.span_reply));
}

LookupService::LookupService(std::unique_ptr<index::MutableFuzzyIndex> index,
                             const LookupServiceOptions& options)
    : index_(std::move(index)),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {}

LookupService::~LookupService() { Shutdown(); }

std::string LookupService::CacheKey(const std::string& query, size_t k,
                                    uint64_t epoch, double target_recall,
                                    const filter::FilterPredicate& filter) const {
  std::string key;
  key.reserve(query.size() + 32);
  for (const std::string& token : index_->tokenizer().Tokenize(query)) {
    key += token;
    key.push_back('\x1f');  // unit separator: cannot appear inside a token
  }
  key.push_back('\x1e');
  key += std::to_string(k);
  key.push_back('\x1e');
  // alpha is fixed per index, but keying on it keeps entries from one index
  // generation meaningless to another if a cache ever outlives a reload.
  key += std::to_string(index_->options().match.alpha);
  key.push_back('\x1e');
  // The epoch makes every mutation a cache-wide invalidation: entries for
  // older epochs are unreachable and age out of the LRU.
  key += std::to_string(epoch);
  key.push_back('\x1e');
  // Approximate and exact lookups of the same query must never share an
  // entry: the recall knob changes the result.
  key += std::to_string(target_recall);
  if (!filter.empty()) {
    // Canonical JSON (sorted conjuncts, sorted deduped values) gives equal
    // predicates equal keys. Appended only when non-empty so unfiltered keys
    // stay byte-identical to pre-filter builds; '{' cannot collide with the
    // number grammar of the recall component above.
    key.push_back('\x1e');
    key += filter.CanonicalJson();
  }
  return key;
}

Result<std::vector<LookupService::Match>> LookupService::Lookup(
    const std::string& query, size_t k, std::chrono::milliseconds deadline,
    double target_recall, const filter::FilterPredicate& filter) {
  Clock::time_point start = Clock::now();
  if (!(target_recall > 0.0) || target_recall > 1.0) {
    return Status::Invalid("target_recall must be in (0, 1]");
  }
  if (deadline.count() < 0) {
    // An already-expired deadline can never be met; reject at admission so
    // it neither queues nor touches the index (it would previously be
    // admitted as if it had no deadline at all).
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("deadline expired before admission");
  }
  // Capture the published epoch once: the cache probe, the key and the
  // eventual LookupAt all use this one view, so a concurrent mutation can
  // neither tear a request across epochs nor satisfy it from a stale entry.
  std::shared_ptr<const index::EpochState> state = index_->Snapshot();
  PurgeStaleCache(state->epoch);
  std::string cache_key = CacheKey(query, k, state->epoch, target_recall, filter);
  if (auto cached = cache_.Get(cache_key)) {
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    metrics_.latency.Record(MicrosSince(start));
    return std::move(*cached);
  }

  std::future<Result<std::vector<Match>>> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      metrics_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("lookup service is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      metrics_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("admission queue full (" +
                                 std::to_string(options_.max_queue) +
                                 " requests queued)");
    }
    Pending pending;
    pending.query = query;
    pending.cache_key = std::move(cache_key);
    pending.state = std::move(state);
    pending.k = k;
    pending.target_recall = target_recall;
    pending.filter = filter;
    pending.start = start;
    pending.has_deadline = deadline.count() > 0;
    pending.deadline = start + deadline;
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
  }
  // Admission span: entry to enqueued (tokenize + cache probe + queue push).
  // Cache hits and rejections never enqueue and are not admissions.
  metrics_.span_admission.Record(MicrosSince(start));
  queue_cv_.notify_one();

  Result<std::vector<Match>> result = future.get();
  if (result.ok()) {
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    metrics_.latency.Record(MicrosSince(start));
  } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
    // Deadline expiries are requests the service answered (with an error),
    // not load shedding: they count toward requests, unlike overload
    // rejections.
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

void LookupService::PurgeStaleCache(uint64_t epoch) {
  // One thread wins the CAS per epoch advance and pays for the sweep; the
  // rest proceed. Entries keyed to older epochs are unreachable (the epoch
  // is in the cache key) — purging returns their capacity immediately
  // instead of letting dead weight ride the LRU.
  uint64_t seen = purged_epoch_.load(std::memory_order_relaxed);
  while (seen < epoch) {
    if (purged_epoch_.compare_exchange_weak(seen, epoch,
                                            std::memory_order_relaxed)) {
      cache_.PurgeEpochsBelow(epoch);
      return;
    }
  }
}

void LookupService::DispatcherLoop() {
  for (;;) {
    std::vector<Pending> batch;
    std::function<void()> hook;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // Shutdown drains the queue itself
      size_t n = std::min(options_.max_batch, queue_.size());
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      hook = dispatch_hook_;
    }
    if (hook) hook();
    RunBatch(&batch);
  }
}

void LookupService::RunBatch(std::vector<Pending>* batch) {
  // Expire requests whose deadline passed while they waited in the queue;
  // they never reach the index.
  Clock::time_point now = Clock::now();
  std::vector<Pending> live;
  live.reserve(batch->size());
  for (Pending& p : *batch) {
    if (p.has_deadline && p.deadline <= now) {
      metrics_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_value(
          Status::DeadlineExceeded("deadline expired before dispatch"));
    } else {
      // Queue-wait span: admission to batch claim (includes the admission
      // span itself — lifecycle spans nest from request start, they don't
      // tile).
      metrics_.span_queue_wait.Record(MicrosSince(p.start));
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  metrics_.batches.fetch_add(1, std::memory_order_relaxed);
  metrics_.batched_lookups.fetch_add(live.size(), std::memory_order_relaxed);

  std::function<void(size_t)> item_hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    item_hook = item_hook_;
  }

  // One lookup per morsel: lookups are coarse enough that per-item stealing
  // beats chunking, and batch sizes are far below morsel-granularity scale.
  exec::ExecContext ctx = options_.exec;
  ctx.morsel_size = 1;
  std::vector<std::vector<Match>> results(live.size());
  std::vector<uint8_t> expired(live.size(), 0);
  exec::ParallelFor(
      ctx, live.size(),
      [&](size_t /*worker*/, size_t /*morsel*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (item_hook) item_hook(i);
          // The batch-claim check above charged queue time, but an item can
          // still go over budget while earlier items of the SAME batch run
          // (batch formation is not free for mid-batch arrivals). Recompute
          // the remaining budget at execution start and refuse over-budget
          // work rather than spending index time on an answer the caller
          // already abandoned.
          if (live[i].has_deadline && live[i].deadline <= Clock::now()) {
            expired[i] = 1;
            metrics_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
            live[i].promise.set_value(
                Status::DeadlineExceeded("deadline expired before execution"));
            continue;
          }
          obs::ObsSpan span(&metrics_.span_lookup);
          results[i] =
              index_->LookupAt(*live[i].state, live[i].query, live[i].k,
                               live[i].target_recall, live[i].filter);
        }
      });

  obs::ObsSpan reply_span(&metrics_.span_reply);
  for (size_t i = 0; i < live.size(); ++i) {
    if (expired[i]) continue;  // promise already failed with DeadlineExceeded
    cache_.Put(live[i].cache_key, live[i].state->epoch, results[i]);
    live[i].promise.set_value(std::move(results[i]));
  }
}

StatsSnapshot LookupService::Stats() const {
  StatsSnapshot s = SnapshotMetrics(metrics_);
  s.cache_evictions = cache_.evictions();
  s.cache_stale_purged = cache_.stale_purged();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
  }
  return s;
}

void LookupService::Shutdown() {
  // Unregister before tearing anything down: once UnregisterProvider
  // returns, no snapshot is reading this service's metrics.
  if (uint64_t pid = provider_id_.exchange(0); pid != 0) {
    obs::Registry::Global().UnregisterProvider(pid);
  }
  std::deque<Pending> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
    drained.swap(queue_);
  }
  queue_cv_.notify_all();
  for (Pending& p : drained) {
    metrics_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    p.promise.set_value(Status::Unavailable("lookup service is shutting down"));
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

void LookupService::SetDispatchHookForTest(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  dispatch_hook_ = std::move(hook);
}

void LookupService::SetItemHookForTest(std::function<void(size_t)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  item_hook_ = std::move(hook);
}

}  // namespace ssjoin::serve
