#include "serve/wire.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ssjoin::serve {

namespace {

/// Recursive-descent parser over the flat-object subset; the cursor is a
/// string_view consumed from the front.
class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  Result<std::map<std::string, JsonScalar>> ParseObject() {
    SkipSpace();
    SSJOIN_RETURN_NOT_OK(Expect('{'));
    std::map<std::string, JsonScalar> out;
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return Finish(std::move(out));
    }
    for (;;) {
      SkipSpace();
      std::string key;
      SSJOIN_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      SSJOIN_RETURN_NOT_OK(Expect(':'));
      SkipSpace();
      JsonScalar value;
      SSJOIN_RETURN_NOT_OK(ParseScalar(&value));
      if (!out.emplace(std::move(key), std::move(value)).second) {
        return Status::Invalid("duplicate key in JSON object");
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Finish(std::move(out));
      }
      if (AtEnd()) {
        return Status::Invalid("unexpected end of input inside JSON object");
      }
      return Status::Invalid("expected ',' or '}' in JSON object");
    }
  }

  Result<std::map<std::string, JsonValue>> ParseRequest() {
    SkipSpace();
    SSJOIN_RETURN_NOT_OK(Expect('{'));
    std::map<std::string, JsonValue> out;
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return FinishRequest(std::move(out));
    }
    for (;;) {
      SkipSpace();
      std::string key;
      SSJOIN_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      SSJOIN_RETURN_NOT_OK(Expect(':'));
      SkipSpace();
      JsonValue value;
      if (Peek() == '{') {
        value.is_object = true;
        SSJOIN_RETURN_NOT_OK(ParseInnerObject(&value.object));
      } else if (Peek() == '[') {
        return Status::Invalid(
            "arrays are only supported inside a nested request object");
      } else {
        SSJOIN_RETURN_NOT_OK(ParseScalar(&value.scalar));
      }
      if (!out.emplace(std::move(key), std::move(value)).second) {
        return Status::Invalid("duplicate key in JSON object");
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return FinishRequest(std::move(out));
      }
      if (AtEnd()) {
        return Status::Invalid("unexpected end of input inside JSON object");
      }
      return Status::Invalid("expected ',' or '}' in JSON object");
    }
  }

 private:
  char Peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= in_.size(); }

  Status Expect(char c) {
    if (AtEnd()) {
      return Status::Invalid(std::string("unexpected end of input, expected '") +
                             c + "' in JSON");
    }
    if (Peek() != c) {
      return Status::Invalid(std::string("expected '") + c + "' in JSON");
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::map<std::string, JsonScalar>> Finish(
      std::map<std::string, JsonScalar> out) {
    SkipSpace();
    if (pos_ != in_.size()) {
      return Status::Invalid("trailing bytes after JSON object");
    }
    return out;
  }

  Result<std::map<std::string, JsonValue>> FinishRequest(
      std::map<std::string, JsonValue> out) {
    SkipSpace();
    if (pos_ != in_.size()) {
      return Status::Invalid("trailing bytes after JSON object");
    }
    return out;
  }

  /// The one nesting level: an object whose values are scalars or arrays of
  /// scalars. Anything deeper is rejected (ParseScalar refuses '{'/'[').
  Status ParseInnerObject(std::map<std::string, JsonNested>* out) {
    SSJOIN_RETURN_NOT_OK(Expect('{'));
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipSpace();
      std::string key;
      SSJOIN_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      SSJOIN_RETURN_NOT_OK(Expect(':'));
      SkipSpace();
      JsonNested value;
      if (Peek() == '[') {
        value.is_array = true;
        ++pos_;
        SkipSpace();
        if (Peek() == ']') {
          ++pos_;
        } else {
          for (;;) {
            SkipSpace();
            JsonScalar item;
            SSJOIN_RETURN_NOT_OK(ParseScalar(&item));
            value.items.push_back(std::move(item));
            SkipSpace();
            char c = Peek();
            if (c == ',') {
              ++pos_;
              continue;
            }
            if (c == ']') {
              ++pos_;
              break;
            }
            if (AtEnd()) {
              return Status::Invalid(
                  "unexpected end of input inside JSON array");
            }
            return Status::Invalid("expected ',' or ']' in JSON array");
          }
        }
      } else {
        JsonScalar item;
        SSJOIN_RETURN_NOT_OK(ParseScalar(&item));
        value.items.push_back(std::move(item));
      }
      if (!out->emplace(std::move(key), std::move(value)).second) {
        return Status::Invalid("duplicate key in nested JSON object");
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Status::OK();
      }
      if (AtEnd()) {
        return Status::Invalid("unexpected end of input inside JSON object");
      }
      return Status::Invalid("expected ',' or '}' in JSON object");
    }
  }

  Status ParseString(std::string* out) {
    SSJOIN_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        // JSON forbids raw control characters (including NUL and embedded
        // newlines — significant for a line-framed protocol) inside strings;
        // they must arrive as \uXXXX or \n-style escapes.
        return Status::Invalid("unescaped control character in JSON string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) break;
      char e = in_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > in_.size()) {
            return Status::Invalid("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::Invalid("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are rejected as the
          // protocol carries UTF-8 directly).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Status::Invalid("surrogate \\u escapes unsupported; send UTF-8");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::Invalid("bad escape in JSON string");
      }
    }
    return Status::Invalid("unterminated JSON string");
  }

  Status ParseScalar(JsonScalar* out) {
    char c = Peek();
    if (c == '"') {
      out->type = JsonScalar::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      size_t len = c == 't' ? 4 : 5;
      if (in_.compare(pos_, len, word) != 0) {
        return Status::Invalid("bad JSON literal");
      }
      pos_ += len;
      out->type = JsonScalar::Type::kBool;
      out->boolean = c == 't';
      return Status::OK();
    }
    if (c == 'n') {
      if (in_.compare(pos_, 4, "null") != 0) {
        return Status::Invalid("bad JSON literal");
      }
      pos_ += 4;
      out->type = JsonScalar::Type::kNull;
      return Status::OK();
    }
    if (c == '{' || c == '[') {
      return Status::Invalid("nested JSON values are not supported");
    }
    // Strict JSON number grammar: -?int frac? exp?, int = 0 | [1-9][0-9]*.
    // The previous scan accepted any run of number-ish characters and let
    // strtod sort it out, which silently took "+1", "01", ".5" and "--" —
    // and "1e999" as infinity.
    if (AtEnd()) return Status::Invalid("unexpected end of input in JSON value");
    size_t start = pos_;
    auto digit = [&] {
      return pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]));
    };
    if (Peek() == '-') ++pos_;
    if (!digit()) return Status::Invalid("bad JSON value");
    if (in_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!digit()) return Status::Invalid("bad JSON number: missing fraction digits");
      while (digit()) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!digit()) return Status::Invalid("bad JSON number: missing exponent digits");
      while (digit()) ++pos_;
    }
    std::string num(in_.substr(start, pos_ - start));
    char* end = nullptr;
    out->num = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::Invalid("bad JSON number '" + num + "'");
    }
    if (!std::isfinite(out->num)) {
      return Status::Invalid("JSON number out of range '" + num + "'");
    }
    out->type = JsonScalar::Type::kNumber;
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::map<std::string, JsonScalar>> ParseJsonObject(std::string_view line) {
  return Parser(line).ParseObject();
}

Result<std::map<std::string, JsonValue>> ParseJsonRequest(std::string_view line) {
  return Parser(line).ParseRequest();
}

namespace {

/// Doubles carry JSON numbers across the parser; only integers exactly
/// representable in both double and int64 may become attribute values.
Result<filter::AttrValue> AttrValueFromScalar(const JsonScalar& scalar) {
  switch (scalar.type) {
    case JsonScalar::Type::kString:
      return filter::AttrValue::String(scalar.str);
    case JsonScalar::Type::kNumber: {
      constexpr double kMaxExact = 9007199254740992.0;  // 2^53
      if (scalar.num != std::trunc(scalar.num) || scalar.num > kMaxExact ||
          scalar.num < -kMaxExact) {
        return Status::Invalid(
            "attribute numbers must be integers with |x| <= 2^53");
      }
      return filter::AttrValue::Int64(static_cast<int64_t>(scalar.num));
    }
    case JsonScalar::Type::kBool:
    case JsonScalar::Type::kNull:
      return Status::Invalid(
          "attribute values must be strings or integer numbers");
  }
  return Status::Invalid("unreachable attribute scalar type");
}

}  // namespace

Result<filter::FilterPredicate> FilterFromWire(const JsonValue& value) {
  if (!value.is_object) {
    return Status::Invalid("'filter' must be a JSON object");
  }
  filter::FilterPredicate pred;
  for (const auto& [key, nested] : value.object) {
    filter::FilterConjunct conjunct;
    conjunct.negated = !key.empty() && key[0] == '!';
    conjunct.name = conjunct.negated ? key.substr(1) : key;
    conjunct.values.reserve(nested.items.size());
    for (const JsonScalar& item : nested.items) {
      SSJOIN_ASSIGN_OR_RETURN(filter::AttrValue v, AttrValueFromScalar(item));
      conjunct.values.push_back(std::move(v));
    }
    SSJOIN_RETURN_NOT_OK(pred.AddConjunct(std::move(conjunct)));
  }
  return pred;
}

Result<filter::AttrSet> AttrsFromWire(const JsonValue& value) {
  if (!value.is_object) {
    return Status::Invalid("'attrs' must be a JSON object");
  }
  filter::AttrSet attrs;
  for (const auto& [key, nested] : value.object) {
    if (nested.is_array) {
      return Status::Invalid("attribute '" + key +
                             "' must be a single scalar, not an array");
    }
    SSJOIN_ASSIGN_OR_RETURN(filter::AttrValue v,
                            AttrValueFromScalar(nested.items.front()));
    SSJOIN_RETURN_NOT_OK(attrs.Set(key, std::move(v)));
  }
  return attrs;
}

std::string AttrsToJson(const filter::AttrSet& attrs) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : attrs.entries()) {
    if (!first) out.push_back(',');
    first = false;
    filter::AppendJsonString(&out, name);
    out.push_back(':');
    if (value.type == filter::AttrType::kString) {
      filter::AppendJsonString(&out, value.str);
    } else {
      out += std::to_string(value.i64);
    }
  }
  out.push_back('}');
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace ssjoin::serve
