#include "serve/wire.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ssjoin::serve {

namespace {

/// Recursive-descent parser over the flat-object subset; the cursor is a
/// string_view consumed from the front.
class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  Result<std::map<std::string, JsonScalar>> ParseObject() {
    SkipSpace();
    SSJOIN_RETURN_NOT_OK(Expect('{'));
    std::map<std::string, JsonScalar> out;
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return Finish(std::move(out));
    }
    for (;;) {
      SkipSpace();
      std::string key;
      SSJOIN_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      SSJOIN_RETURN_NOT_OK(Expect(':'));
      SkipSpace();
      JsonScalar value;
      SSJOIN_RETURN_NOT_OK(ParseScalar(&value));
      if (!out.emplace(std::move(key), std::move(value)).second) {
        return Status::Invalid("duplicate key in JSON object");
      }
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Finish(std::move(out));
      }
      if (AtEnd()) {
        return Status::Invalid("unexpected end of input inside JSON object");
      }
      return Status::Invalid("expected ',' or '}' in JSON object");
    }
  }

 private:
  char Peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= in_.size(); }

  Status Expect(char c) {
    if (AtEnd()) {
      return Status::Invalid(std::string("unexpected end of input, expected '") +
                             c + "' in JSON");
    }
    if (Peek() != c) {
      return Status::Invalid(std::string("expected '") + c + "' in JSON");
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::map<std::string, JsonScalar>> Finish(
      std::map<std::string, JsonScalar> out) {
    SkipSpace();
    if (pos_ != in_.size()) {
      return Status::Invalid("trailing bytes after JSON object");
    }
    return out;
  }

  Status ParseString(std::string* out) {
    SSJOIN_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        // JSON forbids raw control characters (including NUL and embedded
        // newlines — significant for a line-framed protocol) inside strings;
        // they must arrive as \uXXXX or \n-style escapes.
        return Status::Invalid("unescaped control character in JSON string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) break;
      char e = in_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > in_.size()) {
            return Status::Invalid("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::Invalid("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are rejected as the
          // protocol carries UTF-8 directly).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Status::Invalid("surrogate \\u escapes unsupported; send UTF-8");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::Invalid("bad escape in JSON string");
      }
    }
    return Status::Invalid("unterminated JSON string");
  }

  Status ParseScalar(JsonScalar* out) {
    char c = Peek();
    if (c == '"') {
      out->type = JsonScalar::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      size_t len = c == 't' ? 4 : 5;
      if (in_.compare(pos_, len, word) != 0) {
        return Status::Invalid("bad JSON literal");
      }
      pos_ += len;
      out->type = JsonScalar::Type::kBool;
      out->boolean = c == 't';
      return Status::OK();
    }
    if (c == 'n') {
      if (in_.compare(pos_, 4, "null") != 0) {
        return Status::Invalid("bad JSON literal");
      }
      pos_ += 4;
      out->type = JsonScalar::Type::kNull;
      return Status::OK();
    }
    if (c == '{' || c == '[') {
      return Status::Invalid("nested JSON values are not supported");
    }
    // Strict JSON number grammar: -?int frac? exp?, int = 0 | [1-9][0-9]*.
    // The previous scan accepted any run of number-ish characters and let
    // strtod sort it out, which silently took "+1", "01", ".5" and "--" —
    // and "1e999" as infinity.
    if (AtEnd()) return Status::Invalid("unexpected end of input in JSON value");
    size_t start = pos_;
    auto digit = [&] {
      return pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]));
    };
    if (Peek() == '-') ++pos_;
    if (!digit()) return Status::Invalid("bad JSON value");
    if (in_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!digit()) return Status::Invalid("bad JSON number: missing fraction digits");
      while (digit()) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!digit()) return Status::Invalid("bad JSON number: missing exponent digits");
      while (digit()) ++pos_;
    }
    std::string num(in_.substr(start, pos_ - start));
    char* end = nullptr;
    out->num = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::Invalid("bad JSON number '" + num + "'");
    }
    if (!std::isfinite(out->num)) {
      return Status::Invalid("JSON number out of range '" + num + "'");
    }
    out->type = JsonScalar::Type::kNumber;
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::map<std::string, JsonScalar>> ParseJsonObject(std::string_view line) {
  return Parser(line).ParseObject();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace ssjoin::serve
