#include "serve/query_cache.h"

namespace ssjoin::serve {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

QueryCache::QueryCache(size_t capacity, size_t shards) {
  if (capacity == 0) return;
  size_t num_shards = RoundUpPow2(shards == 0 ? 1 : shards);
  // Never more shards than capacity: each shard holds at least one entry.
  while (num_shards > 1 && num_shards > capacity) num_shards >>= 1;
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  // Distribute capacity exactly: base entries per shard, remainder spread
  // over the first shards (ceil rounding on every shard would let the cache
  // hold up to num_shards - 1 entries beyond `capacity`).
  size_t base = capacity / num_shards;
  size_t remainder = capacity % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = base + (i < remainder ? 1 : 0);
  }
}

std::optional<std::vector<index::MutableFuzzyIndex::Match>> QueryCache::Get(
    const std::string& key) {
  if (!enabled()) return std::nullopt;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->matches;
}

void QueryCache::Put(const std::string& key, uint64_t epoch,
                     std::vector<index::MutableFuzzyIndex::Match> matches) {
  if (!enabled()) return;
  if (epoch < min_epoch_.load(std::memory_order_relaxed)) {
    // A request admitted before the purge is completing after it; its result
    // is already unreachable (the key names a superseded epoch), so parking
    // it would waste a capacity slot until the next purge.
    return;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->epoch = epoch;
    it->second->matches = std::move(matches);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, epoch, std::move(matches)});
  shard.map.emplace(key, shard.lru.begin());
}

void QueryCache::PurgeEpochsBelow(uint64_t epoch) {
  if (!enabled()) return;
  // Raise the floor first so no Put() re-parks a stale entry behind the
  // sweep's back (monotonic max under concurrent purges).
  uint64_t prev = min_epoch_.load(std::memory_order_relaxed);
  while (prev < epoch &&
         !min_epoch_.compare_exchange_weak(prev, epoch,
                                           std::memory_order_relaxed)) {
  }
  uint64_t purged = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->epoch < epoch) {
        shard->map.erase(it->key);
        it = shard->lru.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
  }
  if (purged > 0) stale_purged_.fetch_add(purged, std::memory_order_relaxed);
}

size_t QueryCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

}  // namespace ssjoin::serve
