#ifndef SSJOIN_FILTER_ATTR_H_
#define SSJOIN_FILTER_ATTR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/payload.h"
#include "common/result.h"

namespace ssjoin::filter {

/// \brief The typed attribute values records can carry: strings and 64-bit
/// integers. Equality is exact and type-sensitive (Int64(1) != String("1")).
enum class AttrType : uint8_t { kString = 0, kInt64 = 1 };

struct AttrValue {
  AttrType type = AttrType::kString;
  std::string str;  // valid when type == kString
  int64_t i64 = 0;  // valid when type == kInt64

  static AttrValue String(std::string s) {
    AttrValue v;
    v.type = AttrType::kString;
    v.str = std::move(s);
    return v;
  }
  static AttrValue Int64(int64_t x) {
    AttrValue v;
    v.type = AttrType::kInt64;
    v.i64 = x;
    return v;
  }

  friend bool operator==(const AttrValue& a, const AttrValue& b) {
    if (a.type != b.type) return false;
    return a.type == AttrType::kString ? a.str == b.str : a.i64 == b.i64;
  }
  friend bool operator!=(const AttrValue& a, const AttrValue& b) {
    return !(a == b);
  }
  /// Total order (type first, then value) — the canonical sort used by
  /// IN-sets and cache-key encodings.
  friend bool operator<(const AttrValue& a, const AttrValue& b) {
    if (a.type != b.type) return a.type < b.type;
    return a.type == AttrType::kString ? a.str < b.str : a.i64 < b.i64;
  }

  /// Display form: strings as-is, ints in decimal.
  std::string ToString() const;
};

/// \name Attribute validation (the hardened-string rules of serve/wire.cc)
/// Names must be nonempty, at most 256 bytes, contain no NUL or raw control
/// bytes (< 0x20) and no DEL (0x7f), and must not start with '!' — the wire
/// filter syntax reserves a leading '!' for NOT-IN conjuncts. String values
/// follow the same byte rules (any length). Enforced at upsert time so
/// attributes survive both WAL replay and the NDJSON dump path.
/// @{
Status ValidateAttrName(std::string_view name);
Status ValidateAttrStringValue(std::string_view value);
Status ValidateAttrValue(const AttrValue& value);
/// @}

/// \brief The structured attributes of one record: a small set of
/// (name, value) pairs, at most one value per attribute name, kept sorted
/// by name so encodings and comparisons are canonical.
class AttrSet {
 public:
  /// Inserts or replaces `name`. Validates name and value.
  Status Set(std::string name, AttrValue value);

  /// The value of `name`, or nullptr when absent.
  const AttrValue* Find(std::string_view name) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<std::pair<std::string, AttrValue>>& entries() const {
    return entries_;
  }

  friend bool operator==(const AttrSet& a, const AttrSet& b) {
    return a.entries_ == b.entries_;
  }
  friend bool operator!=(const AttrSet& a, const AttrSet& b) {
    return !(a == b);
  }

  /// \name Payload encoding (shared by segment files and the WAL)
  /// count, then per entry: name Str, type U8, value (Str | U64 two's
  /// complement). Decode validates, so a corrupted file cannot smuggle
  /// control bytes past the upsert-time checks.
  /// @{
  void EncodeTo(common::PayloadWriter* w) const;
  static Status DecodeFrom(common::PayloadReader* r, AttrSet* out);
  /// @}

 private:
  std::vector<std::pair<std::string, AttrValue>> entries_;
};

}  // namespace ssjoin::filter

#endif  // SSJOIN_FILTER_ATTR_H_
