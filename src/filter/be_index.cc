#include "filter/be_index.h"

#include <algorithm>

#include "kernels/kernels.h"

namespace ssjoin::filter {

namespace {

/// Density threshold for the bitmap representation: at >= 1/8 of the
/// universe the O(1)-membership bitmap beats merging a long list.
bool PreferBitmap(size_t count, uint32_t universe) {
  return universe > 0 && count * 8 >= universe;
}

}  // namespace

EligibleSet EligibleSet::All() {
  EligibleSet s;
  s.kind_ = Kind::kAll;
  return s;
}

EligibleSet EligibleSet::None() {
  EligibleSet s;
  s.kind_ = Kind::kNone;
  return s;
}

EligibleSet EligibleSet::FromSorted(std::vector<uint32_t> locals,
                                    uint32_t universe) {
  if (locals.empty()) return None();
  EligibleSet s;
  s.count_ = locals.size();
  s.universe_ = universe;
  if (locals.size() == universe) {
    s.kind_ = Kind::kAll;
    return s;
  }
  if (PreferBitmap(locals.size(), universe)) {
    s.kind_ = Kind::kBitmap;
    s.bitmap_.assign((static_cast<size_t>(universe) + 63) / 64, 0);
    for (uint32_t local : locals) {
      s.bitmap_[local >> 6] |= uint64_t{1} << (local & 63);
    }
  } else {
    s.kind_ = Kind::kList;
    s.list_ = std::move(locals);
  }
  return s;
}

bool EligibleSet::Contains(uint32_t local) const {
  switch (kind_) {
    case Kind::kAll:
      return true;
    case Kind::kNone:
      return false;
    case Kind::kList:
      return std::binary_search(list_.begin(), list_.end(), local);
    case Kind::kBitmap:
      return (local >> 6) < bitmap_.size() &&
             (bitmap_[local >> 6] >> (local & 63)) & 1;
  }
  return false;
}

void EligibleSet::FilterSorted(std::vector<uint32_t>* locals) const {
  switch (kind_) {
    case Kind::kAll:
      return;
    case Kind::kNone:
      locals->clear();
      return;
    case Kind::kList: {
      // Both sides sorted unique: the kernel intersection writes the
      // surviving candidates back in place, in order.
      size_t n = kernels::IntersectTokens(
          std::span<const uint32_t>(*locals),
          std::span<const uint32_t>(list_), locals->data());
      locals->resize(n);
      return;
    }
    case Kind::kBitmap: {
      size_t out = 0;
      for (uint32_t local : *locals) {
        if (Contains(local)) (*locals)[out++] = local;
      }
      locals->resize(out);
      return;
    }
  }
}

AttrIndex AttrIndex::Build(std::span<const AttrSet> docs) {
  AttrIndex index;
  index.doc_count_ = static_cast<uint32_t>(docs.size());
  for (uint32_t local = 0; local < docs.size(); ++local) {
    for (const auto& [name, value] : docs[local].entries()) {
      index.postings_[{name, value}].push_back(local);
    }
  }
  return index;  // Locals were appended in ascending order: already sorted.
}

AttrIndex AttrIndex::Empty(uint32_t doc_count) {
  AttrIndex index;
  index.doc_count_ = doc_count;
  return index;
}

std::span<const uint32_t> AttrIndex::Postings(std::string_view name,
                                              const AttrValue& value) const {
  auto it = postings_.find(Key{std::string(name), value});
  if (it == postings_.end()) return {};
  return it->second;
}

EligibleSet AttrIndex::Eval(const FilterPredicate& pred) const {
  if (pred.empty()) return EligibleSet::All();
  if (doc_count_ == 0) return EligibleSet::None();

  const auto& conjuncts = pred.conjuncts();
  const size_t n = pred.num_positive();

  // Pack every touched posting into (local << 32 | conjunct_index << 1 |
  // sign) entries. A positive conjunct whose values all miss the index
  // contributes nothing — with n > 0 that already dooms every local, so
  // bail out early.
  std::vector<uint64_t> entries;
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    const FilterConjunct& c = conjuncts[ci];
    size_t hits = 0;
    for (const AttrValue& v : c.values) {
      std::span<const uint32_t> post = Postings(c.name, v);
      hits += post.size();
      const uint64_t tag = (static_cast<uint64_t>(ci) << 1) |
                           (c.negated ? 1u : 0u);
      for (uint32_t local : post) {
        entries.push_back((static_cast<uint64_t>(local) << 32) | tag);
      }
    }
    if (!c.negated && hits == 0) return EligibleSet::None();
  }

  if (n == 0) {
    // NOT-IN-only: complement of the union of negated postings.
    std::vector<uint32_t> excluded;
    excluded.reserve(entries.size());
    for (uint64_t e : entries) {
      excluded.push_back(static_cast<uint32_t>(e >> 32));
    }
    std::sort(excluded.begin(), excluded.end());
    excluded.erase(std::unique(excluded.begin(), excluded.end()),
                   excluded.end());
    std::vector<uint32_t> eligible;
    eligible.reserve(doc_count_ - excluded.size());
    size_t xi = 0;
    for (uint32_t local = 0; local < doc_count_; ++local) {
      if (xi < excluded.size() && excluded[xi] == local) {
        ++xi;
      } else {
        eligible.push_back(local);
      }
    }
    return EligibleSet::FromSorted(std::move(eligible), doc_count_);
  }

  // k-of-n counting match: sort groups the entries by local; one scan per
  // local counts positive-conjunct hits (each conjunct contributes at most
  // one entry per local — one value per attribute per doc) and rejects on
  // any negated entry.
  std::sort(entries.begin(), entries.end());
  std::vector<uint32_t> eligible;
  size_t i = 0;
  while (i < entries.size()) {
    const uint32_t local = static_cast<uint32_t>(entries[i] >> 32);
    size_t positive = 0;
    bool negated_hit = false;
    for (; i < entries.size() &&
           static_cast<uint32_t>(entries[i] >> 32) == local;
         ++i) {
      if (entries[i] & 1) {
        negated_hit = true;
      } else {
        ++positive;
      }
    }
    if (!negated_hit && positive == n) eligible.push_back(local);
  }
  return EligibleSet::FromSorted(std::move(eligible), doc_count_);
}

}  // namespace ssjoin::filter
