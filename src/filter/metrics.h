#ifndef SSJOIN_FILTER_METRICS_H_
#define SSJOIN_FILTER_METRICS_H_

#include "obs/metrics.h"

namespace ssjoin::filter {

/// Process-wide `filter.*` observability counters, created once and cached
/// (registry lookups are mutex-guarded; lookup paths must not re-resolve
/// names per call).
struct FilterCounters {
  obs::Counter* lookups;           // lookups carrying a non-empty filter
  obs::Counter* candidates_in;     // similarity candidates before filtering
  obs::Counter* candidates_kept;   // candidates surviving the eligible set
  obs::Counter* segments_skipped;  // segments with an empty eligible set
};

const FilterCounters& FilterMetrics();

/// Pre-creates the filter.* counters so they appear in metric dumps before
/// the first filtered lookup (mirrors kernels::RegisterKernelMetrics).
void RegisterFilterMetrics();

}  // namespace ssjoin::filter

#endif  // SSJOIN_FILTER_METRICS_H_
