#ifndef SSJOIN_FILTER_PREDICATE_H_
#define SSJOIN_FILTER_PREDICATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "filter/attr.h"

namespace ssjoin::filter {

/// \brief One conjunct of a filter: `name IN {values}` or
/// `name NOT IN {values}`. Values are kept sorted and deduplicated so the
/// canonical encoding (and therefore the query-cache key) is unambiguous.
///
/// Semantics over a record's AttrSet (the single source of truth, used both
/// by the exact post-filter oracle and by the BE-index evaluator):
///  - positive: the record has `name` and its value is in the set;
///  - negated:  the record lacks `name` OR its value is not in the set.
struct FilterConjunct {
  std::string name;
  bool negated = false;
  std::vector<AttrValue> values;
};

/// \brief A conjunction of IN / NOT-IN conjuncts over record attributes.
/// An empty predicate matches every record.
class FilterPredicate {
 public:
  /// Validates and canonicalizes (sorts + dedups values), then appends.
  /// Rejects empty value sets and duplicate (name, negated) conjuncts.
  Status AddConjunct(FilterConjunct conjunct);

  bool empty() const { return conjuncts_.empty(); }
  const std::vector<FilterConjunct>& conjuncts() const { return conjuncts_; }
  /// Number of positive (non-negated) conjuncts — the `n` of the k-of-n
  /// counting match.
  size_t num_positive() const { return num_positive_; }

  /// Exact match semantics; the oracle the BE-index must agree with.
  bool Matches(const AttrSet& attrs) const;

  /// Canonical JSON object, e.g. `{"country":["DE","FR"],"!status":[3]}`:
  /// conjuncts sorted by (name, negated), values sorted, ints as JSON
  /// numbers, strings as JSON strings. Used verbatim as the wire `"filter"`
  /// value in coordinator fan-out and as the query-cache key component, so
  /// equal predicates always hit the same cache slot. Empty predicate
  /// encodes as "{}".
  std::string CanonicalJson() const;

  friend bool operator==(const FilterPredicate& a, const FilterPredicate& b);
  friend bool operator!=(const FilterPredicate& a, const FilterPredicate& b) {
    return !(a == b);
  }

 private:
  std::vector<FilterConjunct> conjuncts_;  // sorted by (name, negated)
  size_t num_positive_ = 0;
};

/// Appends `s` as a double-quoted JSON string with the same escaping rules
/// as serve's JsonEscape (attribute bytes are already control-free, but the
/// encoder stays safe for arbitrary input).
void AppendJsonString(std::string* out, std::string_view s);

}  // namespace ssjoin::filter

#endif  // SSJOIN_FILTER_PREDICATE_H_
