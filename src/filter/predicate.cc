#include "filter/predicate.h"

#include <algorithm>

#include "common/string_util.h"

namespace ssjoin::filter {

Status FilterPredicate::AddConjunct(FilterConjunct conjunct) {
  SSJOIN_RETURN_NOT_OK(ValidateAttrName(conjunct.name));
  if (conjunct.values.empty()) {
    return Status::Invalid("filter conjunct '" + conjunct.name +
                           "' has an empty value set");
  }
  for (const AttrValue& v : conjunct.values) {
    SSJOIN_RETURN_NOT_OK(ValidateAttrValue(v));
  }
  std::sort(conjunct.values.begin(), conjunct.values.end());
  conjunct.values.erase(
      std::unique(conjunct.values.begin(), conjunct.values.end()),
      conjunct.values.end());
  auto key = [](const FilterConjunct& c) {
    return std::make_pair(std::string_view(c.name), c.negated);
  };
  auto it = std::lower_bound(conjuncts_.begin(), conjuncts_.end(), conjunct,
                             [&](const FilterConjunct& a,
                                 const FilterConjunct& b) {
                               return key(a) < key(b);
                             });
  if (it != conjuncts_.end() && key(*it) == key(conjunct)) {
    return Status::Invalid(StringPrintf(
        "duplicate filter conjunct '%s%s'", conjunct.negated ? "!" : "",
        conjunct.name.c_str()));
  }
  if (!conjunct.negated) ++num_positive_;
  conjuncts_.insert(it, std::move(conjunct));
  return Status::OK();
}

bool FilterPredicate::Matches(const AttrSet& attrs) const {
  for (const FilterConjunct& c : conjuncts_) {
    const AttrValue* v = attrs.Find(c.name);
    bool in_set =
        v != nullptr &&
        std::binary_search(c.values.begin(), c.values.end(), *v);
    if (c.negated ? in_set : !in_set) return false;
  }
  return true;
}

std::string FilterPredicate::CanonicalJson() const {
  std::string out = "{";
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    const FilterConjunct& c = conjuncts_[i];
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, c.negated ? "!" + c.name : c.name);
    out += ":[";
    for (size_t j = 0; j < c.values.size(); ++j) {
      if (j > 0) out.push_back(',');
      const AttrValue& v = c.values[j];
      if (v.type == AttrType::kString) {
        AppendJsonString(&out, v.str);
      } else {
        out += std::to_string(v.i64);
      }
    }
    out += "]";
  }
  out.push_back('}');
  return out;
}

bool operator==(const FilterPredicate& a, const FilterPredicate& b) {
  if (a.conjuncts_.size() != b.conjuncts_.size()) return false;
  for (size_t i = 0; i < a.conjuncts_.size(); ++i) {
    const FilterConjunct& x = a.conjuncts_[i];
    const FilterConjunct& y = b.conjuncts_[i];
    if (x.name != y.name || x.negated != y.negated || x.values != y.values) {
      return false;
    }
  }
  return true;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          *out += StringPrintf("\\u%04x", c);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

}  // namespace ssjoin::filter
