#ifndef SSJOIN_FILTER_BE_INDEX_H_
#define SSJOIN_FILTER_BE_INDEX_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "filter/attr.h"
#include "filter/predicate.h"

namespace ssjoin::filter {

/// \brief The eligible-doc set a predicate evaluation produces, in the
/// representation the evaluator picked by selectivity:
///
///  - kAll:    empty predicate — every local is eligible (no work).
///  - kNone:   nothing matches — the caller skips the segment outright.
///  - kList:   a sorted unique local-id list; intersected with the
///             similarity candidate list via kernels::IntersectTokens.
///  - kBitmap: one bit per local; candidates are membership-tested.
///
/// Both materialized forms describe the same set, and FilterSorted keeps
/// the candidate list sorted either way, so the downstream verification
/// order — and therefore every floating-point sum — is bit-identical to
/// exact post-filtering regardless of representation.
class EligibleSet {
 public:
  enum class Kind : uint8_t { kAll = 0, kNone = 1, kList = 2, kBitmap = 3 };

  static EligibleSet All();
  static EligibleSet None();
  /// Chooses kList or kBitmap from the density |locals| / universe (dense
  /// sets pay for O(1) membership words; sparse sets stay mergeable).
  /// `locals` must be sorted and unique, each < universe.
  static EligibleSet FromSorted(std::vector<uint32_t> locals,
                                uint32_t universe);

  Kind kind() const { return kind_; }
  /// Number of eligible locals; universe size for kAll.
  size_t count() const { return count_; }
  bool Contains(uint32_t local) const;

  /// Removes ineligible locals from a sorted unique candidate list in
  /// place, preserving order.
  void FilterSorted(std::vector<uint32_t>* locals) const;

 private:
  Kind kind_ = Kind::kAll;
  size_t count_ = 0;
  uint32_t universe_ = 0;
  std::vector<uint32_t> list_;    // kList
  std::vector<uint64_t> bitmap_;  // kBitmap
};

/// \brief BE-index-style inverted attribute index over the docs of one
/// segment (or one immutable index): posting lists of local doc ids keyed
/// by (attribute, value).
///
/// Predicate evaluation is a k-of-n counting match over packed posting
/// entries. Every posting list a conjunct touches is tagged
/// `(conjunct_index << 1) | sign` and its locals are packed into 64-bit
/// entries `local << 32 | tag`; one sort groups the entries by local, and a
/// single scan counts distinct positive conjuncts per local (each doc holds
/// at most one value per attribute, so a conjunct contributes at most one
/// entry per local and plain counting needs no dedup). A local is eligible
/// iff its positive count equals n — the number of positive conjuncts —
/// and no negated entry appears. With n == 0 (NOT-IN-only predicates) the
/// eligible set is the complement of the union of negated postings.
class AttrIndex {
 public:
  AttrIndex() = default;

  /// Builds the posting lists for docs [0, docs.size()); doc i's attributes
  /// are docs[i]. Docs without attributes simply appear in no posting.
  static AttrIndex Build(std::span<const AttrSet> docs);

  /// An index over `doc_count` attribute-less docs — the universe still
  /// matters: NOT-IN-only predicates match every doc of it.
  static AttrIndex Empty(uint32_t doc_count);

  uint32_t doc_count() const { return doc_count_; }
  /// True when no doc carries any attribute (every non-trivial positive
  /// conjunct is then unsatisfiable, but evaluation handles that anyway).
  bool empty() const { return postings_.empty(); }

  /// Sorted local ids holding exactly (name, value); empty when unseen.
  std::span<const uint32_t> Postings(std::string_view name,
                                     const AttrValue& value) const;

  /// Evaluates `pred` over all docs of this index.
  EligibleSet Eval(const FilterPredicate& pred) const;

 private:
  // Key is (name, value); map keeps lookups simple and the build canonical.
  using Key = std::pair<std::string, AttrValue>;
  struct KeyLess {
    bool operator()(const Key& a, const Key& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    }
  };

  uint32_t doc_count_ = 0;
  std::map<Key, std::vector<uint32_t>, KeyLess> postings_;
};

}  // namespace ssjoin::filter

#endif  // SSJOIN_FILTER_BE_INDEX_H_
