#include "filter/metrics.h"

namespace ssjoin::filter {

const FilterCounters& FilterMetrics() {
  static const FilterCounters counters = [] {
    obs::Registry& r = obs::Registry::Global();
    FilterCounters c;
    c.lookups = r.GetCounter("filter.lookups");
    c.candidates_in = r.GetCounter("filter.candidates_in");
    c.candidates_kept = r.GetCounter("filter.candidates_kept");
    c.segments_skipped = r.GetCounter("filter.segments_skipped");
    return c;
  }();
  return counters;
}

void RegisterFilterMetrics() { (void)FilterMetrics(); }

}  // namespace ssjoin::filter
