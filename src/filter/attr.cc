#include "filter/attr.h"

#include <algorithm>

#include "common/string_util.h"

namespace ssjoin::filter {

namespace {

constexpr size_t kMaxAttrNameBytes = 256;

Status CheckBytes(std::string_view s, const char* what) {
  for (unsigned char c : s) {
    if (c < 0x20 || c == 0x7f) {
      return Status::Invalid(StringPrintf(
          "%s contains a raw control byte 0x%02x; control bytes are "
          "rejected at upsert time (they would not survive the NDJSON "
          "dump path)",
          what, c));
    }
  }
  return Status::OK();
}

}  // namespace

std::string AttrValue::ToString() const {
  return type == AttrType::kString ? str : std::to_string(i64);
}

Status ValidateAttrName(std::string_view name) {
  if (name.empty()) return Status::Invalid("attribute name is empty");
  if (name.size() > kMaxAttrNameBytes) {
    return Status::Invalid(StringPrintf(
        "attribute name is %zu bytes; the limit is %zu", name.size(),
        kMaxAttrNameBytes));
  }
  if (name.front() == '!') {
    return Status::Invalid(
        "attribute name '" + std::string(name) +
        "' starts with '!', which the filter syntax reserves for NOT-IN");
  }
  return CheckBytes(name, "attribute name");
}

Status ValidateAttrStringValue(std::string_view value) {
  return CheckBytes(value, "attribute value");
}

Status ValidateAttrValue(const AttrValue& value) {
  if (value.type == AttrType::kString) {
    return ValidateAttrStringValue(value.str);
  }
  return Status::OK();
}

Status AttrSet::Set(std::string name, AttrValue value) {
  SSJOIN_RETURN_NOT_OK(ValidateAttrName(name));
  SSJOIN_RETURN_NOT_OK(ValidateAttrValue(value));
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, {std::move(name), std::move(value)});
  }
  return Status::OK();
}

const AttrValue* AttrSet::Find(std::string_view name) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) return &it->second;
  return nullptr;
}

void AttrSet::EncodeTo(common::PayloadWriter* w) const {
  w->U64(entries_.size());
  for (const auto& [name, value] : entries_) {
    w->Str(name);
    w->U8(static_cast<uint8_t>(value.type));
    if (value.type == AttrType::kString) {
      w->Str(value.str);
    } else {
      w->U64(static_cast<uint64_t>(value.i64));
    }
  }
}

Status AttrSet::DecodeFrom(common::PayloadReader* r, AttrSet* out) {
  *out = AttrSet();
  uint64_t count = 0;
  SSJOIN_RETURN_NOT_OK(r->U64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    SSJOIN_RETURN_NOT_OK(r->Str(&name));
    uint8_t type = 0;
    SSJOIN_RETURN_NOT_OK(r->U8(&type));
    AttrValue value;
    if (type == static_cast<uint8_t>(AttrType::kString)) {
      value.type = AttrType::kString;
      SSJOIN_RETURN_NOT_OK(r->Str(&value.str));
    } else if (type == static_cast<uint8_t>(AttrType::kInt64)) {
      value.type = AttrType::kInt64;
      uint64_t bits = 0;
      SSJOIN_RETURN_NOT_OK(r->U64(&bits));
      value.i64 = static_cast<int64_t>(bits);
    } else {
      return Status::Invalid(
          StringPrintf("attribute payload: unknown value type %u", type));
    }
    SSJOIN_RETURN_NOT_OK(out->Set(std::move(name), std::move(value)));
  }
  return Status::OK();
}

}  // namespace ssjoin::filter
