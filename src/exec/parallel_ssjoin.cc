#include "exec/parallel_ssjoin.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "common/timer.h"
#include "core/inverted_index.h"
#include "exec/parallel_for.h"
#include "kernels/kernels.h"

namespace ssjoin::exec {

namespace {

using core::GroupId;
using core::InvertedIndex;
using core::OverlapPredicate;
using core::SetsRelation;
using core::SSJoinContext;
using core::SSJoinPair;
using core::SSJoinStats;
using core::WeightVector;

const ExecContext& Exec(const SSJoinContext& ctx) {
  static const ExecContext kSerial;
  return ctx.exec != nullptr ? *ctx.exec : kSerial;
}

size_t MorselSize(const ExecContext& ec) {
  return std::max<size_t>(1, ec.morsel_size);
}

size_t NumMorsels(size_t n, size_t morsel) {
  return (n + morsel - 1) / morsel;
}

/// Per-worker scratch count for a loop of `n` items: ParallelFor never uses
/// more workers than morsels (and at least one).
size_t NumWorkers(const ExecContext& ec, size_t n, size_t morsel) {
  return std::max<size_t>(1, std::min(ec.resolved_threads(), NumMorsels(n, morsel)));
}

/// One morsel's private output: result pairs plus a stats record holding
/// only counters (phase timings stay coordinator-owned so merged stats are
/// deterministic).
struct MorselOutput {
  std::vector<SSJoinPair> pairs;
  SSJoinStats stats;
};

/// Concatenates per-morsel outputs in morsel order — this, not completion
/// order, is what makes parallel output identical to the serial scan order.
void MergeMorselOutputs(std::vector<MorselOutput>& morsels,
                        std::vector<SSJoinPair>* pairs, SSJoinStats* stats) {
  size_t total = 0;
  for (const MorselOutput& m : morsels) total += m.pairs.size();
  pairs->reserve(pairs->size() + total);
  for (MorselOutput& m : morsels) {
    stats->Merge(m.stats);
    pairs->insert(pairs->end(), m.pairs.begin(), m.pairs.end());
  }
}

/// Per-worker epoch-marked seen array for candidate dedup, reused across the
/// morsels a worker executes.
struct ProbeScratch {
  std::vector<uint32_t> seen_epoch;
  uint32_t epoch = 0;
  std::vector<GroupId> cands;

  void EnsureSize(size_t num_groups) {
    if (seen_epoch.size() < num_groups) {
      seen_epoch.assign(num_groups, 0);
      epoch = 0;
    }
  }

  uint32_t NextEpoch() {
    if (++epoch == 0) {  // wrapped: clear marks and restart
      std::fill(seen_epoch.begin(), seen_epoch.end(), 0u);
      epoch = 1;
    }
    return epoch;
  }
};

/// Morsel-local mirror of core's GeneratePrefixCandidates: probes the prefix
/// inverted index with R-groups [rg_begin, rg_end), deduplicating candidates
/// per R-group via the worker's scratch. Emits `emit(rg, s_groups)` exactly
/// as the serial path does, in increasing rg.
template <typename EmitFn>
void GenerateCandidatesRange(const core::PrefixFilteredRelation& r_pref,
                             const InvertedIndex& s_index, size_t rg_begin,
                             size_t rg_end, ProbeScratch& scratch,
                             SSJoinStats* stats, const EmitFn& emit) {
  for (size_t rg = rg_begin; rg < rg_end; ++rg) {
    core::SetView prefix = r_pref.prefixes.view(static_cast<GroupId>(rg));
    if (prefix.empty()) continue;
    uint32_t epoch = scratch.NextEpoch();
    scratch.cands.clear();
    for (text::TokenId e : prefix) {
      auto [begin, end] = s_index.Lookup(e);
      stats->equijoin_rows += static_cast<size_t>(end - begin);
      kernels::ProbePostings({begin, end}, epoch, scratch.seen_epoch.data(),
                             &scratch.cands);
    }
    if (!scratch.cands.empty()) {
      emit(static_cast<GroupId>(rg), scratch.cands);
    }
  }
}

/// Prefix-filters a relation with the per-group work spread over morsels.
/// Each morsel covers a contiguous group range and appends its prefixes to a
/// private CSR store; concatenating the morsel stores in morsel order then
/// yields exactly core::PrefixFilterRelation's flat layout — no per-group
/// heap allocation survives the filter.
core::PrefixFilteredRelation ParallelPrefixFilter(
    const SetsRelation& rel, const WeightVector& weights,
    const core::ElementOrder& order, const OverlapPredicate& pred,
    core::JoinSide side, const ExecContext& ec) {
  size_t morsel = MorselSize(ec);
  std::vector<core::SetStore> morsel_stores(NumMorsels(rel.num_groups(), morsel));
  std::vector<std::vector<text::TokenId>> scratch(
      NumWorkers(ec, rel.num_groups(), morsel));
  ParallelFor(ec, rel.num_groups(),
              [&](size_t worker, size_t m, size_t begin, size_t end) {
                core::SetStore& store = morsel_stores[m];
                std::vector<text::TokenId>& prefix = scratch[worker];
                for (size_t g = begin; g < end; ++g) {
                  double required = side == core::JoinSide::kR
                                        ? pred.RSideRequired(rel.norms[g])
                                        : pred.SSideRequired(rel.norms[g]);
                  double beta = rel.set_weights[g] - required;
                  core::ComputePrefixInto(rel.set(static_cast<GroupId>(g)),
                                          weights, order, beta, &prefix);
                  store.AppendSet(prefix);
                }
              });
  core::PrefixFilteredRelation out;
  size_t total = 0;
  for (const core::SetStore& m : morsel_stores) total += m.total_elements();
  out.prefixes.Reserve(rel.num_groups(), total);
  for (const core::SetStore& m : morsel_stores) out.prefixes.AppendStore(m);
  return out;
}

void RecordPrefixStats(const SetsRelation& r, const SetsRelation& s,
                       const core::PrefixFilteredRelation& r_pref,
                       const core::PrefixFilteredRelation& s_pref,
                       SSJoinStats* stats) {
  stats->r_prefix_elements = r_pref.total_prefix_elements();
  stats->s_prefix_elements = s_pref.total_prefix_elements();
  for (GroupId g = 0; g < r.num_groups(); ++g) {
    if (r_pref.prefixes.elements(g).empty() && !r.set(g).empty()) {
      ++stats->pruned_groups_r;
    }
  }
  for (GroupId g = 0; g < s.num_groups(); ++g) {
    if (s_pref.prefixes.elements(g).empty() && !s.set(g).empty()) {
      ++stats->pruned_groups_s;
    }
  }
}

class ParallelNaiveSSJoin final : public core::SSJoinExecutor {
 public:
  std::string name() const override { return "parallel-naive"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(core::ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/false));
    const WeightVector& w = *ctx.weights;
    const ExecContext& ec = Exec(ctx);
    Timer timer;
    size_t morsel = MorselSize(ec);
    std::vector<MorselOutput> morsels(NumMorsels(r.num_groups(), morsel));
    ParallelFor(ec, r.num_groups(),
                [&](size_t /*worker*/, size_t m, size_t begin, size_t end) {
                  MorselOutput& out = morsels[m];
                  for (size_t rg = begin; rg < end; ++rg) {
                    for (GroupId sg = 0; sg < s.num_groups(); ++sg) {
                      ++out.stats.candidate_pairs;
                      double overlap = kernels::IntersectWeighted(
                          r.set(static_cast<GroupId>(rg)), s.set(sg), w.data());
                      if (overlap > 0.0 &&
                          pred.Test(overlap, r.norms[rg], s.norms[sg])) {
                        out.pairs.push_back({static_cast<GroupId>(rg), sg, overlap});
                      }
                    }
                  }
                });
    std::vector<SSJoinPair> out;
    MergeMorselOutputs(morsels, &out, stats);
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", timer.ElapsedMillis());
    return out;
  }
};

class ParallelBasicSSJoin final : public core::SSJoinExecutor {
 public:
  std::string name() const override { return "parallel-basic"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(core::ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/false));
    const WeightVector& w = *ctx.weights;
    const ExecContext& ec = Exec(ctx);
    Timer timer;
    size_t num_elements = core::MaxElementId(r, s) + 1;
    InvertedIndex s_index(s.store, num_elements);

    // Each morsel materializes, sorts and aggregates the equi-join rows of
    // its own R-range. Keys are (rg << 32) | sg, so per-morsel sorted runs
    // concatenated in morsel order equal the globally sorted row stream, and
    // stable sorting keeps equal-key rows in generation (element) order —
    // the per-pair weight sums are bit-identical to the serial plan's.
    struct JoinRow {
      uint64_t key;
      double weight;
    };
    size_t morsel = MorselSize(ec);
    std::vector<MorselOutput> morsels(NumMorsels(r.num_groups(), morsel));
    ParallelFor(ec, r.num_groups(),
                [&](size_t /*worker*/, size_t m, size_t begin, size_t end) {
                  MorselOutput& out = morsels[m];
                  std::vector<JoinRow> rows;
                  for (size_t rg = begin; rg < end; ++rg) {
                    for (text::TokenId e : r.set(static_cast<GroupId>(rg))) {
                      auto [lo, hi] = s_index.Lookup(e);
                      double we = w[e];
                      for (const GroupId* p = lo; p != hi; ++p) {
                        rows.push_back(
                            {(static_cast<uint64_t>(rg) << 32) | *p, we});
                      }
                    }
                  }
                  out.stats.equijoin_rows = rows.size();
                  std::stable_sort(rows.begin(), rows.end(),
                                   [](const JoinRow& a, const JoinRow& b) {
                                     return a.key < b.key;
                                   });
                  size_t i = 0;
                  while (i < rows.size()) {
                    uint64_t key = rows[i].key;
                    double overlap = 0.0;
                    while (i < rows.size() && rows[i].key == key) {
                      overlap += rows[i].weight;
                      ++i;
                    }
                    ++out.stats.candidate_pairs;
                    GroupId rg = static_cast<GroupId>(key >> 32);
                    GroupId sg = static_cast<GroupId>(key & 0xffffffffu);
                    if (pred.Test(overlap, r.norms[rg], s.norms[sg])) {
                      out.pairs.push_back({rg, sg, overlap});
                    }
                  }
                });
    std::vector<SSJoinPair> out;
    MergeMorselOutputs(morsels, &out, stats);
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", timer.ElapsedMillis());
    return out;
  }
};

class ParallelInvertedIndexSSJoin final : public core::SSJoinExecutor {
 public:
  std::string name() const override { return "parallel-inverted-index"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(core::ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/false));
    const WeightVector& w = *ctx.weights;
    const ExecContext& ec = Exec(ctx);
    Timer timer;
    size_t num_elements = core::MaxElementId(r, s) + 1;
    InvertedIndex s_index(s.store, num_elements);

    struct Scratch {
      std::vector<double> acc;
      std::vector<uint32_t> seen_epoch;
      std::vector<GroupId> touched;
      uint32_t epoch = 0;
    };
    size_t morsel = MorselSize(ec);
    std::vector<Scratch> scratch(NumWorkers(ec, r.num_groups(), morsel));
    std::vector<MorselOutput> morsels(NumMorsels(r.num_groups(), morsel));
    ParallelFor(ec, r.num_groups(),
                [&](size_t worker, size_t m, size_t begin, size_t end) {
                  Scratch& sc = scratch[worker];
                  if (sc.acc.size() < s.num_groups()) {
                    sc.acc.assign(s.num_groups(), 0.0);
                    sc.seen_epoch.assign(s.num_groups(), 0);
                    sc.epoch = 0;
                  }
                  MorselOutput& out = morsels[m];
                  for (size_t rg = begin; rg < end; ++rg) {
                    if (++sc.epoch == 0) {
                      std::fill(sc.seen_epoch.begin(), sc.seen_epoch.end(), 0u);
                      sc.epoch = 1;
                    }
                    sc.touched.clear();
                    for (text::TokenId e : r.set(static_cast<GroupId>(rg))) {
                      auto [lo, hi] = s_index.Lookup(e);
                      out.stats.equijoin_rows += static_cast<size_t>(hi - lo);
                      kernels::AccumulatePostings({lo, hi}, w[e], sc.epoch,
                                                  sc.seen_epoch.data(),
                                                  sc.acc.data(), &sc.touched);
                    }
                    out.stats.candidate_pairs += sc.touched.size();
                    for (GroupId sg : sc.touched) {
                      if (pred.Test(sc.acc[sg], r.norms[rg], s.norms[sg])) {
                        out.pairs.push_back(
                            {static_cast<GroupId>(rg), sg, sc.acc[sg]});
                      }
                    }
                  }
                });
    std::vector<SSJoinPair> out;
    MergeMorselOutputs(morsels, &out, stats);
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", timer.ElapsedMillis());
    return out;
  }
};

class ParallelPrefixFilterSSJoin final : public core::SSJoinExecutor {
 public:
  std::string name() const override { return "parallel-prefix-filter"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(core::ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/true));
    const WeightVector& w = *ctx.weights;
    const ExecContext& ec = Exec(ctx);

    Timer prefix_timer;
    core::PrefixFilteredRelation r_pref =
        ParallelPrefixFilter(r, w, *ctx.order, pred, core::JoinSide::kR, ec);
    core::PrefixFilteredRelation s_pref =
        ParallelPrefixFilter(s, w, *ctx.order, pred, core::JoinSide::kS, ec);
    RecordPrefixStats(r, s, r_pref, s_pref, stats);
    size_t num_elements = core::MaxElementId(r, s) + 1;
    InvertedIndex s_index(s_pref.prefixes, num_elements);
    stats->phases.Add("Prefix-filter", prefix_timer.ElapsedMillis());

    // Stage 1 — candidate generation, partitioned over R-groups. Per-morsel
    // candidate runs concatenated in morsel order reproduce the serial
    // candidate sequence exactly.
    Timer join_timer;
    struct Candidate {
      GroupId r;
      GroupId s;
    };
    struct CandMorsel {
      std::vector<Candidate> cands;
      SSJoinStats stats;
    };
    size_t morsel = MorselSize(ec);
    std::vector<CandMorsel> cand_morsels(NumMorsels(r.num_groups(), morsel));
    std::vector<ProbeScratch> scratch(NumWorkers(ec, r.num_groups(), morsel));
    ParallelFor(ec, r.num_groups(),
                [&](size_t worker, size_t m, size_t begin, size_t end) {
                  ProbeScratch& sc = scratch[worker];
                  sc.EnsureSize(s.num_groups());
                  CandMorsel& out = cand_morsels[m];
                  GenerateCandidatesRange(
                      r_pref, s_index, begin, end, sc, &out.stats,
                      [&](GroupId rg, const std::vector<GroupId>& ss) {
                        for (GroupId sg : ss) out.cands.push_back({rg, sg});
                      });
                });
    std::vector<Candidate> candidates;
    {
      size_t total = 0;
      for (const CandMorsel& m : cand_morsels) total += m.cands.size();
      candidates.reserve(total);
      for (CandMorsel& m : cand_morsels) {
        stats->Merge(m.stats);
        candidates.insert(candidates.end(), m.cands.begin(), m.cands.end());
      }
    }
    stats->candidate_pairs = candidates.size();

    // Stage 2 — verification, range-partitioned over the candidate array.
    // Each candidate's overlap is a sorted merge of its two base sets (same
    // summation order as the serial re-join's clustered rows), and serial
    // semantics are preserved: candidates whose sets do not intersect are
    // dropped without a predicate test.
    std::vector<MorselOutput> verify_morsels(NumMorsels(candidates.size(), morsel));
    ParallelFor(
        ec, candidates.size(),
        [&](size_t /*worker*/, size_t m, size_t begin, size_t end) {
          MorselOutput& out = verify_morsels[m];
          for (size_t c = begin; c < end; ++c) {
            core::SetView rset = r.set(candidates[c].r);
            core::SetView sset = s.set(candidates[c].s);
            size_t matches = 0;
            double overlap =
                kernels::IntersectWeighted(rset, sset, w.data(), &matches);
            GroupId rg = candidates[c].r;
            GroupId sg = candidates[c].s;
            if (matches > 0 && pred.Test(overlap, r.norms[rg], s.norms[sg])) {
              out.pairs.push_back({rg, sg, overlap});
            }
          }
        });
    std::vector<SSJoinPair> out;
    MergeMorselOutputs(verify_morsels, &out, stats);
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", join_timer.ElapsedMillis());
    return out;
  }
};

class ParallelInlinePrefixFilterSSJoin final : public core::SSJoinExecutor {
 public:
  std::string name() const override { return "parallel-prefix-filter-inline"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(core::ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/true));
    const WeightVector& w = *ctx.weights;
    const ExecContext& ec = Exec(ctx);

    Timer prefix_timer;
    core::PrefixFilteredRelation r_pref =
        ParallelPrefixFilter(r, w, *ctx.order, pred, core::JoinSide::kR, ec);
    core::PrefixFilteredRelation s_pref =
        ParallelPrefixFilter(s, w, *ctx.order, pred, core::JoinSide::kS, ec);
    stats->r_prefix_elements = r_pref.total_prefix_elements();
    stats->s_prefix_elements = s_pref.total_prefix_elements();
    size_t num_elements = core::MaxElementId(r, s) + 1;
    InvertedIndex s_index(s_pref.prefixes, num_elements);
    stats->phases.Add("Prefix-filter", prefix_timer.ElapsedMillis());

    // Candidates carry their sets inline (Figure 9): generation and the
    // overlap "UDF" run in the same morsel, partitioned over R-groups.
    Timer join_timer;
    size_t morsel = MorselSize(ec);
    std::vector<MorselOutput> morsels(NumMorsels(r.num_groups(), morsel));
    std::vector<ProbeScratch> scratch(NumWorkers(ec, r.num_groups(), morsel));
    ParallelFor(ec, r.num_groups(),
                [&](size_t worker, size_t m, size_t begin, size_t end) {
                  ProbeScratch& sc = scratch[worker];
                  sc.EnsureSize(s.num_groups());
                  MorselOutput& out = morsels[m];
                  GenerateCandidatesRange(
                      r_pref, s_index, begin, end, sc, &out.stats,
                      [&](GroupId rg, const std::vector<GroupId>& ss) {
                        out.stats.candidate_pairs += ss.size();
                        for (GroupId sg : ss) {
                          double overlap = kernels::IntersectWeighted(
                              r.set(static_cast<GroupId>(rg)), s.set(sg),
                              w.data());
                          if (overlap > 0.0 &&
                              pred.Test(overlap, r.norms[rg], s.norms[sg])) {
                            out.pairs.push_back({rg, sg, overlap});
                          }
                        }
                      });
                });
    std::vector<SSJoinPair> out;
    MergeMorselOutputs(morsels, &out, stats);
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", join_timer.ElapsedMillis());
    return out;
  }
};

}  // namespace

std::unique_ptr<core::SSJoinExecutor> MakeParallelExecutor(
    core::SSJoinAlgorithm algorithm) {
  switch (algorithm) {
    case core::SSJoinAlgorithm::kNaive:
      return std::make_unique<ParallelNaiveSSJoin>();
    case core::SSJoinAlgorithm::kBasic:
      return std::make_unique<ParallelBasicSSJoin>();
    case core::SSJoinAlgorithm::kInvertedIndex:
      return std::make_unique<ParallelInvertedIndexSSJoin>();
    case core::SSJoinAlgorithm::kPrefixFilter:
      return std::make_unique<ParallelPrefixFilterSSJoin>();
    case core::SSJoinAlgorithm::kPrefixFilterInline:
      return std::make_unique<ParallelInlinePrefixFilterSSJoin>();
    case core::SSJoinAlgorithm::kApprox:
    case core::SSJoinAlgorithm::kHybrid:
      // The approx tier parallelizes internally (approx::ExecuteSSJoin);
      // there is no separate exec-layer executor for it.
      return nullptr;
  }
  return nullptr;
}

Result<std::vector<core::SSJoinPair>> ExecuteSSJoin(
    core::SSJoinAlgorithm algorithm, const core::SetsRelation& r,
    const core::SetsRelation& s, const core::OverlapPredicate& pred,
    const core::SSJoinContext& ctx, core::SSJoinStats* stats) {
  core::SSJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (ctx.exec != nullptr && ctx.exec->parallel()) {
    std::unique_ptr<core::SSJoinExecutor> executor =
        MakeParallelExecutor(algorithm);
    if (executor != nullptr) {
      Result<std::vector<core::SSJoinPair>> result =
          executor->Execute(r, s, pred, ctx, stats);
      // The serial fallback below publishes inside core::ExecuteSSJoin;
      // publishing here only on the parallel path keeps every join counted
      // exactly once.
      if (result.ok()) core::PublishSSJoinStats(*stats);
      return result;
    }
  }
  return core::ExecuteSSJoin(algorithm, r, s, pred, ctx, stats);
}

}  // namespace ssjoin::exec
