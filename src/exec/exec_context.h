#ifndef SSJOIN_EXEC_EXEC_CONTEXT_H_
#define SSJOIN_EXEC_EXEC_CONTEXT_H_

#include <cstddef>
#include <thread>

namespace ssjoin::exec {

/// \brief Execution knobs for the morsel-driven parallel runtime, threaded
/// through core::SSJoinContext into the physical executors.
///
/// Header-only and dependency-free so that core can carry a pointer to it
/// without depending on the exec library.
struct ExecContext {
  /// Worker threads to use (the calling thread counts as one of them).
  /// 1 = serial execution, 0 = one per hardware thread.
  size_t num_threads = 1;
  /// Target work-unit size of the morsel scheduler: number of groups
  /// (candidate generation) or candidate pairs (verification) per morsel.
  /// Small enough for load balancing, large enough to amortize dispatch.
  size_t morsel_size = 2048;

  /// `num_threads` with 0 resolved to the hardware concurrency.
  size_t resolved_threads() const {
    if (num_threads != 0) return num_threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  bool parallel() const { return resolved_threads() > 1; }
};

}  // namespace ssjoin::exec

#endif  // SSJOIN_EXEC_EXEC_CONTEXT_H_
