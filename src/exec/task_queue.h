#ifndef SSJOIN_EXEC_TASK_QUEUE_H_
#define SSJOIN_EXEC_TASK_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ssjoin::exec {

/// \brief Unbounded multi-producer multi-consumer blocking queue, the work
/// channel between ThreadPool::Submit and the worker loops.
///
/// Close() wakes every blocked consumer; consumers drain the remaining items
/// and then observe end-of-stream (an empty optional from Pop).
template <typename T>
class TaskQueue {
 public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues an item. Returns false (dropping the item) once closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// returns the item, or an empty optional for end-of-stream.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: no further Push succeeds, blocked Pops wake up.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Largest queue length ever observed by Push (monotone).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
  size_t high_water_ = 0;
};

}  // namespace ssjoin::exec

#endif  // SSJOIN_EXEC_TASK_QUEUE_H_
