#ifndef SSJOIN_EXEC_PARALLEL_FOR_H_
#define SSJOIN_EXEC_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <utility>

#include "exec/exec_context.h"
#include "exec/metrics.h"
#include "exec/thread_pool.h"

namespace ssjoin::exec {

/// \brief Morsel-driven parallel loop over the index range [0, n).
///
/// The range is split into contiguous morsels of `ctx.morsel_size` indices;
/// workers pull morsels from a shared atomic cursor (classic work stealing by
/// oversubscription: fast workers simply take more morsels). For each morsel
/// the body is invoked as
///
///   fn(worker_id, morsel_index, begin, end)
///
/// with `worker_id` dense in [0, workers) — use it to index per-worker
/// scratch — and `morsel_index` dense in [0, num_morsels) — use it to index
/// per-morsel output slots, whose concatenation in morsel order is then
/// independent of scheduling (the determinism guarantee the parallel SSJoin
/// executors rely on).
///
/// Blocks until every morsel has run. `ctx.resolved_threads() - 1` helper
/// workers are borrowed from ThreadPool::Shared(); the calling thread
/// participates as worker 0, so progress is guaranteed even when the shared
/// pool is saturated. If one or more morsel bodies throw, the exception of
/// the lowest-numbered failing morsel is rethrown (deterministically) after
/// all workers have stopped; remaining unclaimed morsels are abandoned.
///
/// Calling ParallelFor from inside a pool task runs the loop inline on the
/// caller (nested parallelism would deadlock a fixed-size pool).
template <typename Fn>
void ParallelFor(const ExecContext& ctx, size_t n, Fn&& fn) {
  if (n == 0) return;
  const size_t morsel = std::max<size_t>(1, ctx.morsel_size);
  const size_t num_morsels = (n + morsel - 1) / morsel;
  // Morsel accounting is independent of thread count and scheduling: the
  // split depends only on (n, morsel_size), so these counters stay
  // deterministic across 1/2/8-thread runs of the same workload.
  internal::ParallelForCallsCounter().Add(1);
  internal::MorselsDispatchedCounter().Add(num_morsels);
  size_t workers = std::min(ctx.resolved_threads(), num_morsels);
  if (ThreadPool::InWorkerThread()) workers = 1;

  if (workers <= 1) {
    for (size_t m = 0; m < num_morsels; ++m) {
      fn(size_t{0}, m, m * morsel, std::min(n, (m + 1) * morsel));
    }
    return;
  }

  struct State {
    std::atomic<size_t> next_morsel{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable cv;
    size_t helpers_running = 0;
    std::exception_ptr error;
    size_t error_morsel = std::numeric_limits<size_t>::max();
  } state;

  auto run_worker = [&](size_t worker_id) {
    for (;;) {
      size_t m = state.next_morsel.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) return;
      if (state.failed.load(std::memory_order_relaxed)) return;
      try {
        fn(worker_id, m, m * morsel, std::min(n, (m + 1) * morsel));
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (m < state.error_morsel) {
          state.error_morsel = m;
          state.error = std::current_exception();
        }
        state.failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.helpers_running = workers - 1;
  }
  size_t started = 0;
  for (size_t w = 1; w < workers; ++w) {
    bool ok = ThreadPool::Shared().Submit([&, w] {
      run_worker(w);
      // Notify while holding the mutex: the caller destroys `state` as soon
      // as its wait returns, and the wait cannot return before the unlock, so
      // the condvar is guaranteed alive for the whole notify call.
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.helpers_running == 0) state.cv.notify_one();
    });
    if (ok) ++started;
  }
  if (started < workers - 1) {
    // Shared pool rejected tasks (shut down): absorb the missing helpers.
    std::lock_guard<std::mutex> lock(state.mu);
    state.helpers_running -= (workers - 1) - started;
  }

  run_worker(0);

  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&] { return state.helpers_running == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace ssjoin::exec

#endif  // SSJOIN_EXEC_PARALLEL_FOR_H_
