#include "exec/thread_pool.h"

namespace ssjoin::exec {

namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return queue_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  while (std::optional<std::function<void()>> task = queue_.Pop()) {
    (*task)();
  }
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: keeps the pool usable from any static teardown and
  // avoids joining at an unpredictable point of process exit.
  static ThreadPool* pool = new ThreadPool([] {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }());
  return *pool;
}

}  // namespace ssjoin::exec
