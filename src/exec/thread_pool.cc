#include "exec/thread_pool.h"

#include "exec/metrics.h"

namespace ssjoin::exec {

namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  bool ok = queue_.Push(std::move(task));
  if (ok) {
    internal::QueueDepthHighWater().SetMax(
        static_cast<int64_t>(queue_.high_water()));
  }
  return ok;
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  obs::Counter& busy = internal::WorkerBusyMicros();
  obs::Counter& idle = internal::WorkerIdleMicros();
  obs::Counter& tasks = internal::TasksExecutedCounter();
  for (;;) {
    // Idle covers the blocking Pop; a worker parked on an empty queue only
    // contributes once it wakes, so idle totals trail real time on a quiet
    // pool.
    obs::ObsSpan idle_span(&idle);
    std::optional<std::function<void()>> task = queue_.Pop();
    idle_span.Stop();
    if (!task) return;
    tasks.Add(1);
    obs::ObsSpan busy_span(&busy);
    (*task)();
  }
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: keeps the pool usable from any static teardown and
  // avoids joining at an unpredictable point of process exit.
  static ThreadPool* pool = new ThreadPool([] {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }());
  return *pool;
}

}  // namespace ssjoin::exec
