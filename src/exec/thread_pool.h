#ifndef SSJOIN_EXEC_THREAD_POOL_H_
#define SSJOIN_EXEC_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "exec/task_queue.h"

namespace ssjoin::exec {

/// \brief Fixed-size thread pool draining a shared task queue.
///
/// Tasks are plain `void()` closures and must not throw — structured
/// constructs built on top (ParallelFor) catch inside the task and carry the
/// exception back to the caller. Submitting after Shutdown is a no-op that
/// returns false.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns false if the pool has been shut down.
  bool Submit(std::function<void()> task);

  /// Closes the queue, drains the remaining tasks and joins all workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  /// True when the calling thread is a pool worker. ParallelFor uses this to
  /// degrade nested parallelism to inline execution instead of deadlocking
  /// on its own pool.
  static bool InWorkerThread();

  /// Process-wide shared pool, lazily started with one worker per hardware
  /// thread. Never destroyed (workers idle in the queue until process exit),
  /// which sidesteps static-destruction-order hazards.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  TaskQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace ssjoin::exec

#endif  // SSJOIN_EXEC_THREAD_POOL_H_
