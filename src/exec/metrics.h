#ifndef SSJOIN_EXEC_METRICS_H_
#define SSJOIN_EXEC_METRICS_H_

#include "obs/metrics.h"

namespace ssjoin::exec {

/// Pre-creates the exec runtime's obs::Registry entries (exec.tasks_executed,
/// exec.morsels_dispatched, ...) so metric exports list the full name set
/// even before the first parallel loop runs.
void RegisterExecMetrics();

namespace internal {

/// Cached pointers into Registry::Global() — one name lookup per process,
/// cheap enough for ParallelFor's and WorkerLoop's hot paths.
obs::Counter& TasksExecutedCounter();
obs::Counter& MorselsDispatchedCounter();
obs::Counter& ParallelForCallsCounter();
obs::Counter& WorkerBusyMicros();
obs::Counter& WorkerIdleMicros();
obs::Gauge& QueueDepthHighWater();

}  // namespace internal
}  // namespace ssjoin::exec

#endif  // SSJOIN_EXEC_METRICS_H_
