#include "exec/metrics.h"

namespace ssjoin::exec {

namespace internal {

obs::Counter& TasksExecutedCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter("exec.tasks_executed");
  return *c;
}

obs::Counter& MorselsDispatchedCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("exec.morsels_dispatched");
  return *c;
}

obs::Counter& ParallelForCallsCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("exec.parallel_for_calls");
  return *c;
}

obs::Counter& WorkerBusyMicros() {
  static obs::Counter* c = obs::Registry::Global().GetCounter("exec.worker_busy_us");
  return *c;
}

obs::Counter& WorkerIdleMicros() {
  static obs::Counter* c = obs::Registry::Global().GetCounter("exec.worker_idle_us");
  return *c;
}

obs::Gauge& QueueDepthHighWater() {
  static obs::Gauge* g = obs::Registry::Global().GetGauge("exec.queue_depth_hwm");
  return *g;
}

}  // namespace internal

void RegisterExecMetrics() {
  internal::TasksExecutedCounter();
  internal::MorselsDispatchedCounter();
  internal::ParallelForCallsCounter();
  internal::WorkerBusyMicros();
  internal::WorkerIdleMicros();
  internal::QueueDepthHighWater();
}

}  // namespace ssjoin::exec
