#ifndef SSJOIN_EXEC_PARALLEL_SSJOIN_H_
#define SSJOIN_EXEC_PARALLEL_SSJOIN_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/ssjoin.h"

namespace ssjoin::exec {

/// \brief Morsel-driven parallel implementations of the physical SSJoin
/// algorithms (§4), built on ThreadPool/ParallelFor.
///
/// Parallelization scheme:
///  - Candidate generation is partitioned over R-groups: each morsel probes
///    the shared (read-only) inverted index over S with a contiguous range
///    of R-groups, writing candidates/pairs and SSJoinStats counters into
///    its own output slot.
///  - Verification (prefix-filter variant) is range-partitioned over the
///    candidate-pair array.
///  - Per-morsel outputs are concatenated and stats merged in morsel order,
///    and every per-pair overlap is summed in sorted element order, so the
///    result — pairs, their order, their overlaps, and all counters — is
///    identical to the serial executor's regardless of thread count.
///
/// Returned executors honor `SSJoinContext::exec` for thread/morsel counts
/// (null falls back to serial inline execution).
std::unique_ptr<core::SSJoinExecutor> MakeParallelExecutor(
    core::SSJoinAlgorithm algorithm);

/// \brief Drop-in replacement for core::ExecuteSSJoin that dispatches to the
/// parallel executors when `ctx.exec` requests more than one thread, and to
/// the serial core executors otherwise.
Result<std::vector<core::SSJoinPair>> ExecuteSSJoin(
    core::SSJoinAlgorithm algorithm, const core::SetsRelation& r,
    const core::SetsRelation& s, const core::OverlapPredicate& pred,
    const core::SSJoinContext& ctx, core::SSJoinStats* stats = nullptr);

}  // namespace ssjoin::exec

#endif  // SSJOIN_EXEC_PARALLEL_SSJOIN_H_
