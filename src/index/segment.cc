#include "index/segment.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/payload.h"

namespace ssjoin::index {

namespace {

constexpr char kSegmentMagic[8] = {'S', 'S', 'J', 'S', 'E', 'G', 'V', '1'};
// v1: doc ids, values, sets, tombstones. v2 appends per-doc attribute sets.
// Writers emit v2; v1 files still load (with empty attributes), so indexes
// sealed before the attribute format bump reopen unchanged.
constexpr uint32_t kSegmentVersion = 2;
constexpr uint32_t kSegmentVersionNoAttrs = 1;
constexpr size_t kSegmentHeaderSize = 16;

}  // namespace

void Segment::AppendDoc(uint64_t doc_id, std::string value,
                        std::span<const text::TokenId> elements,
                        filter::AttrSet doc_attrs) {
  uint32_t local = static_cast<uint32_t>(doc_ids.size());
  doc_ids.push_back(doc_id);
  values.push_back(std::move(value));
  attrs.push_back(std::move(doc_attrs));
  sets.AppendSet(elements);
  doc_states[doc_id] = DocState{local, false};
}

void Segment::RecordDelete(uint64_t doc_id) {
  doc_states[doc_id].deleted = true;
}

void Segment::BuildPostings() {
  posting_elements_.clear();
  posting_locals_.clear();
  size_t total = sets.total_elements();
  std::vector<std::pair<text::TokenId, uint32_t>> pairs;
  pairs.reserve(total);
  for (uint32_t local = 0; local < doc_ids.size(); ++local) {
    for (text::TokenId e : sets.elements(local)) pairs.emplace_back(e, local);
  }
  std::sort(pairs.begin(), pairs.end());
  posting_elements_.reserve(pairs.size());
  posting_locals_.reserve(pairs.size());
  for (const auto& [e, local] : pairs) {
    posting_elements_.push_back(e);
    posting_locals_.push_back(local);
  }
  tombstone_count_ = 0;
  for (const auto& [id, st] : doc_states) {
    if (st.deleted) ++tombstone_count_;
  }
  attr_index_ = filter::AttrIndex::Build(attrs);
}

std::span<const uint32_t> Segment::Postings(text::TokenId e) const {
  auto lo = std::lower_bound(posting_elements_.begin(), posting_elements_.end(), e);
  auto hi = std::upper_bound(lo, posting_elements_.end(), e);
  size_t begin = static_cast<size_t>(lo - posting_elements_.begin());
  size_t end = static_cast<size_t>(hi - posting_elements_.begin());
  return {posting_locals_.data() + begin, posting_locals_.data() + end};
}

std::string Segment::EncodeFile() const {
  common::PayloadWriter w;
  w.U64(serial);
  w.Vec(doc_ids);
  w.U64(values.size());
  for (const std::string& v : values) w.Str(v);
  w.Vec(sets.offsets());
  w.Vec(sets.token_ids());
  // Tombstones sorted by doc_id: doc_states iteration order is not
  // deterministic, file bytes (and their checksums) must be.
  std::vector<uint64_t> tombstones;
  for (const auto& [id, st] : doc_states) {
    if (st.deleted) tombstones.push_back(id);
  }
  std::sort(tombstones.begin(), tombstones.end());
  w.Vec(tombstones);
  // v2: per-doc attribute sets (AttrSet keeps entries sorted by name, so
  // the encoding — and the file checksum — is canonical).
  for (size_t i = 0; i < values.size(); ++i) {
    if (i < attrs.size()) {
      attrs[i].EncodeTo(&w);
    } else {
      filter::AttrSet().EncodeTo(&w);
    }
  }

  const std::string& payload = w.buffer();
  uint64_t checksum = HashString(payload);
  std::string bytes;
  bytes.reserve(kSegmentHeaderSize + payload.size() + sizeof(checksum));
  bytes.append(kSegmentMagic, sizeof(kSegmentMagic));
  uint32_t version = kSegmentVersion;
  uint32_t flags = 0;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&flags), sizeof(flags));
  bytes.append(payload);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

Result<Segment> Segment::DecodeFile(std::string_view bytes) {
  if (bytes.size() < kSegmentHeaderSize + sizeof(uint64_t)) {
    return Status::IOError("segment file is truncated");
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::IOError("segment file has a bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  if (version != kSegmentVersion && version != kSegmentVersionNoAttrs) {
    return Status::IOError("unsupported segment version " +
                           std::to_string(version));
  }
  const char* payload = bytes.data() + kSegmentHeaderSize;
  size_t payload_size = bytes.size() - kSegmentHeaderSize - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored), sizeof(stored));
  if (HashString(std::string_view(payload, payload_size)) != stored) {
    return Status::IOError("segment file checksum mismatch");
  }

  common::PayloadReader r(payload, payload_size);
  Segment seg;
  SSJOIN_RETURN_NOT_OK(r.U64(&seg.serial));
  SSJOIN_RETURN_NOT_OK(r.Vec(&seg.doc_ids));
  uint64_t num_values = 0;
  SSJOIN_RETURN_NOT_OK(r.U64(&num_values));
  if (num_values != seg.doc_ids.size()) {
    return Status::IOError("segment value count != doc count");
  }
  seg.values.resize(num_values);
  for (std::string& v : seg.values) SSJOIN_RETURN_NOT_OK(r.Str(&v));
  std::vector<uint32_t> offsets;
  std::vector<text::TokenId> token_ids;
  SSJOIN_RETURN_NOT_OK(r.Vec(&offsets));
  SSJOIN_RETURN_NOT_OK(r.Vec(&token_ids));
  SSJOIN_ASSIGN_OR_RETURN(
      seg.sets, core::SetStore::FromParts(std::move(offsets), std::move(token_ids)));
  if (seg.sets.num_groups() != seg.doc_ids.size()) {
    return Status::IOError("segment set count != doc count");
  }
  std::vector<uint64_t> tombstones;
  SSJOIN_RETURN_NOT_OK(r.Vec(&tombstones));
  seg.attrs.resize(seg.doc_ids.size());
  if (version >= 2) {
    for (filter::AttrSet& a : seg.attrs) {
      SSJOIN_RETURN_NOT_OK(filter::AttrSet::DecodeFrom(&r, &a));
    }
  }
  if (!r.AtEnd()) {
    return Status::IOError("segment payload has trailing bytes");
  }

  for (uint32_t local = 0; local < seg.doc_ids.size(); ++local) {
    seg.doc_states[seg.doc_ids[local]] = DocState{local, false};
  }
  for (uint64_t id : tombstones) seg.doc_states[id].deleted = true;
  seg.BuildPostings();
  return seg;
}

}  // namespace ssjoin::index
