#ifndef SSJOIN_INDEX_SEGMENT_H_
#define SSJOIN_INDEX_SEGMENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/set_store.h"
#include "filter/attr.h"
#include "filter/be_index.h"
#include "text/dictionary.h"

namespace ssjoin::index {

/// Sentinel local index for a doc_id a segment only tombstones (the doc's
/// body, if any, lives in an older segment).
inline constexpr uint32_t kNoLocalDoc = UINT32_MAX;

/// A doc_id's state within one segment: the local index of its latest
/// version appended here (kNoLocalDoc if none) and whether a delete was the
/// last operation touching it in this segment.
struct DocState {
  uint32_t last_local = kNoLocalDoc;
  bool deleted = false;
};

/// \brief One generation of a MutableFuzzyIndex: doc ids, their raw values,
/// their canonical element sets (global-dictionary ids, CSR layout) and the
/// per-doc_id state map that resolves winners across generations.
///
/// The same type serves as the append-only mutable tail (the writer appends
/// under its mutex and copies the segment on every epoch publish) and, after
/// sealing, as an immutable generation shared between epochs by shared_ptr.
/// `BuildPostings` materializes the inverted index (element -> local doc
/// indexes, sorted) used for candidate generation; it is built at freeze/load
/// time, never serialized.
///
/// Tombstones (doc_states entries with `deleted`) are persisted with sealed
/// segments: a delete recorded in generation j must keep suppressing copies
/// of the doc in generations < j after a restart. Full compaction folds all
/// generations into one and drops them.
struct Segment {
  uint64_t serial = 0;
  std::vector<uint64_t> doc_ids;
  std::vector<std::string> values;
  /// Structured attributes per local doc (parallel to `values`; empty sets
  /// for docs without attributes).
  std::vector<filter::AttrSet> attrs;
  core::SetStore sets;
  std::unordered_map<uint64_t, DocState> doc_states;

  size_t num_docs() const { return doc_ids.size(); }
  bool empty() const { return doc_ids.empty() && doc_states.empty(); }
  size_t num_tombstones() const { return tombstone_count_; }

  /// Appends one document version. `elements` must be canonical (sorted by
  /// id, duplicate-free).
  void AppendDoc(uint64_t doc_id, std::string value,
                 std::span<const text::TokenId> elements,
                 filter::AttrSet doc_attrs = {});

  /// Records a delete: the latest state of `doc_id` in this segment becomes
  /// "deleted" (also suppressing any copy in older segments).
  void RecordDelete(uint64_t doc_id);

  /// Sorts the (element, local) pairs into the postings arrays and caches
  /// the tombstone count. Call once the segment stops mutating.
  void BuildPostings();

  /// Local doc indexes containing element `e` (ascending). Valid only after
  /// BuildPostings.
  std::span<const uint32_t> Postings(text::TokenId e) const;

  /// The (attribute, value) -> locals predicate index over this segment's
  /// docs. Valid only after BuildPostings.
  const filter::AttrIndex& attr_index() const { return attr_index_; }

  /// Serialized segment file: magic, version, payload, FNV-1a trailer.
  std::string EncodeFile() const;

  /// Decodes, validates (magic/version/checksum/CSR invariants) and rebuilds
  /// doc_states and postings.
  static Result<Segment> DecodeFile(std::string_view bytes);

 private:
  std::vector<text::TokenId> posting_elements_;
  std::vector<uint32_t> posting_locals_;
  filter::AttrIndex attr_index_;
  size_t tombstone_count_ = 0;
};

}  // namespace ssjoin::index

#endif  // SSJOIN_INDEX_SEGMENT_H_
