#include "index/mutable_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include "common/atomic_file.h"
#include "common/hash.h"
#include "core/predicate.h"
#include "filter/be_index.h"
#include "filter/metrics.h"
#include "core/prefix_filter.h"
#include "index/manifest.h"
#include "kernels/kernels.h"
#include "text/weights.h"

namespace ssjoin::index {

namespace {

namespace fs = std::filesystem;

std::string SegmentFileName(uint64_t serial) {
  return "seg-" + std::to_string(serial) + ".seg";
}

std::string WalFileName(uint64_t serial) {
  return "wal-" + std::to_string(serial) + ".wal";
}

std::unique_ptr<text::Tokenizer> MakeTokenizer(
    const simjoin::FuzzyMatchIndex::Options& match) {
  if (match.word_tokens) return std::make_unique<text::WordTokenizer>();
  return std::make_unique<text::QGramTokenizer>(match.q);
}

}  // namespace

MutableFuzzyIndex::MutableFuzzyIndex(const MutableIndexOptions& options)
    : options_(options), tokenizer_(MakeTokenizer(options.match)) {}

Result<std::unique_ptr<MutableFuzzyIndex>> MutableFuzzyIndex::Create(
    const MutableIndexOptions& options) {
  if (options.match.alpha <= 0.0 || options.match.alpha > 1.0) {
    return Status::Invalid("alpha must be in (0, 1]");
  }
  std::unique_ptr<MutableFuzzyIndex> index(new MutableFuzzyIndex(options));
  if (!options.data_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.data_dir, ec);
    if (ec) {
      return Status::IOError("cannot create data directory '" +
                             options.data_dir + "': " + ec.message());
    }
    std::string manifest_path =
        options.data_dir + "/" + kManifestFileName;
    if (fs::exists(manifest_path)) {
      return Status::Invalid("data directory '" + options.data_dir +
                             "' already holds a manifest; use Open");
    }
    index->wal_file_ = WalFileName(index->next_serial_);
    SSJOIN_ASSIGN_OR_RETURN(
        WalWriter wal,
        WalWriter::Create(options.data_dir + "/" + index->wal_file_));
    index->wal_.emplace(std::move(wal));
    std::lock_guard<std::mutex> lock(index->writer_mu_);
    SSJOIN_RETURN_NOT_OK(index->PersistSealedLocked({}));
    index->PublishLocked();
  } else {
    std::lock_guard<std::mutex> lock(index->writer_mu_);
    index->PublishLocked();
  }
  index->StartBackground();
  return index;
}

Result<std::unique_ptr<MutableFuzzyIndex>> MutableFuzzyIndex::Open(
    const MutableIndexOptions& options) {
  if (options.data_dir.empty()) {
    return Status::Invalid("Open requires a data directory");
  }
  std::string manifest_path = options.data_dir + "/" + kManifestFileName;
  SSJOIN_ASSIGN_OR_RETURN(Manifest manifest, LoadManifest(manifest_path));

  MutableIndexOptions effective = options;
  effective.match = manifest.options;
  std::unique_ptr<MutableFuzzyIndex> index(new MutableFuzzyIndex(effective));
  SSJOIN_ASSIGN_OR_RETURN(
      index->dict_, text::TokenDictionary::Restore(
                        std::move(manifest.dict_entries),
                        manifest.dict_num_documents));

  std::lock_guard<std::mutex> lock(index->writer_mu_);
  for (const ManifestSegmentRef& ref : manifest.segments) {
    std::string path = options.data_dir + "/" + ref.file;
    std::string bytes;
    Status read = common::ReadFile(path, &bytes);
    if (!read.ok()) {
      return Status::IOError("missing or unreadable segment file '" +
                             ref.file + "': " + read.ToString());
    }
    if (HashString(bytes) != ref.checksum) {
      return Status::IOError("segment file '" + ref.file +
                             "' checksum mismatch");
    }
    SSJOIN_ASSIGN_OR_RETURN(Segment seg, Segment::DecodeFile(bytes));
    if (seg.serial != ref.serial || seg.num_docs() != ref.num_docs) {
      return Status::IOError("segment file '" + ref.file +
                             "' does not match its manifest entry");
    }
    index->sealed_.push_back(std::make_shared<const Segment>(std::move(seg)));
    index->seg_refs_.push_back(ref);
  }

  // Rebuild the live view from segment contents: the newest per-doc state
  // across generations decides the winner, exactly as lookups resolve it.
  index->df_live_.assign(index->dict_.num_elements(), 0);
  std::unordered_map<uint64_t, std::pair<uint32_t, DocState>> final_state;
  for (uint32_t si = 0; si < index->sealed_.size(); ++si) {
    for (const auto& [doc_id, st] : index->sealed_[si]->doc_states) {
      final_state[doc_id] = {si, st};
    }
  }
  for (const auto& [doc_id, seg_state] : final_state) {
    const auto& [si, st] = seg_state;
    if (st.deleted || st.last_local == kNoLocalDoc) continue;
    index->doc_map_[doc_id] = DocLoc{si, st.last_local};
    for (text::TokenId e : index->sealed_[si]->sets.elements(st.last_local)) {
      if (e >= index->df_live_.size()) {
        return Status::IOError("segment element out of dictionary range");
      }
      ++index->df_live_[e];
    }
    ++index->live_docs_;
  }

  index->epoch_ = manifest.epoch;
  index->last_sealed_seq_ = manifest.last_sealed_seq;
  index->next_seq_ = manifest.last_sealed_seq + 1;
  index->next_serial_ = manifest.next_serial;

  // Replay unsealed operations from the WAL, skipping stale records (their
  // effect is already inside a sealed segment) and truncating any torn tail
  // so subsequent appends extend a clean log.
  index->wal_file_ = manifest.wal_file;
  std::string wal_path = options.data_dir + "/" + index->wal_file_;
  if (fs::exists(wal_path)) {
    SSJOIN_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(wal_path));
    std::error_code ec;
    uint64_t size = fs::file_size(wal_path, ec);
    if (!ec && wal.valid_bytes < size) {
      fs::resize_file(wal_path, wal.valid_bytes, ec);
      if (ec) {
        return Status::IOError("cannot truncate torn WAL tail: " + ec.message());
      }
    }
    for (const WalRecord& rec : wal.records) {
      if (rec.seq <= index->last_sealed_seq_) continue;  // stale
      index->next_seq_ = rec.seq;
      if (rec.type == WalRecord::kUpsert) {
        SSJOIN_RETURN_NOT_OK(index->ApplyUpsert(rec.doc_id, rec.value,
                                                rec.attrs, /*log_wal=*/false));
      } else {
        SSJOIN_RETURN_NOT_OK(index->ApplyDelete(rec.doc_id, /*log_wal=*/false));
      }
    }
    SSJOIN_ASSIGN_OR_RETURN(
        WalWriter writer, WalWriter::OpenForAppend(wal_path, wal.version));
    index->wal_.emplace(std::move(writer));
  } else {
    SSJOIN_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Create(wal_path));
    index->wal_.emplace(std::move(writer));
  }

  index->PublishLocked();
  index->StartBackground();
  return index;
}

void MutableFuzzyIndex::StartBackground() {
  provider_id_.store(obs::Registry::Global().RegisterProvider(
      [this](std::vector<obs::MetricPoint>* out) { CollectMetrics(out); }));
  if (options_.background_maintenance &&
      (options_.seal_threshold > 0 || options_.max_generations > 0)) {
    maintenance_ = std::thread([this] { BackgroundLoop(); });
  }
}

MutableFuzzyIndex::~MutableFuzzyIndex() {
  if (uint64_t pid = provider_id_.exchange(0); pid != 0) {
    obs::Registry::Global().UnregisterProvider(pid);
  }
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    stopping_ = true;
  }
  maint_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
}

void MutableFuzzyIndex::CollectMetrics(std::vector<obs::MetricPoint>* out) const {
  Stats s = GetStats();
  out->push_back(obs::MetricPoint::FromGauge("index.epoch",
                                             static_cast<int64_t>(s.epoch)));
  out->push_back(obs::MetricPoint::FromGauge(
      "index.segments", static_cast<int64_t>(s.sealed_segments)));
  out->push_back(obs::MetricPoint::FromGauge(
      "index.tail_docs", static_cast<int64_t>(s.tail_docs)));
  out->push_back(obs::MetricPoint::FromGauge(
      "index.tombstones", static_cast<int64_t>(s.tombstones)));
  out->push_back(obs::MetricPoint::FromGauge(
      "index.live_docs", static_cast<int64_t>(s.live_docs)));
  out->push_back(obs::MetricPoint::FromCounter("index.upserts", s.upserts));
  out->push_back(obs::MetricPoint::FromCounter("index.deletes", s.deletes));
  out->push_back(obs::MetricPoint::FromCounter("index.seals", s.seals));
  out->push_back(obs::MetricPoint::FromCounter("index.compactions", s.compactions));
  out->push_back(obs::MetricPoint::FromHistogram("index.publish_us", publish_us_));
  out->push_back(
      obs::MetricPoint::FromHistogram("index.compaction_us", compaction_us_));
}

MutableFuzzyIndex::Stats MutableFuzzyIndex::GetStats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    s.epoch = epoch_;
    s.sealed_segments = sealed_.size();
    s.tail_docs = tail_.num_docs();
    s.live_docs = live_docs_;
    for (const auto& seg : sealed_) s.tombstones += seg->num_tombstones();
    for (const auto& [id, st] : tail_.doc_states) {
      if (st.deleted) ++s.tombstones;
    }
  }
  s.upserts = upserts_.load(std::memory_order_relaxed);
  s.deletes = deletes_.load(std::memory_order_relaxed);
  s.seals = seals_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  return s;
}

std::span<const text::TokenId> MutableFuzzyIndex::ElementsOf(
    const DocLoc& loc) const {
  if (loc.segment == kTailSegment) return tail_.sets.elements(loc.local);
  return sealed_[loc.segment]->sets.elements(loc.local);
}

bool MutableFuzzyIndex::RemoveLive(uint64_t doc_id) {
  auto it = doc_map_.find(doc_id);
  if (it == doc_map_.end()) return false;
  for (text::TokenId e : ElementsOf(it->second)) --df_live_[e];
  --live_docs_;
  doc_map_.erase(it);
  return true;
}

Status MutableFuzzyIndex::ApplyUpsert(uint64_t doc_id, const std::string& value,
                                      const filter::AttrSet& attrs,
                                      bool log_wal) {
  if (log_wal && wal_.has_value()) {
    WalRecord rec;
    rec.type = WalRecord::kUpsert;
    rec.seq = next_seq_;
    rec.doc_id = doc_id;
    rec.value = value;
    rec.attrs = attrs;
    SSJOIN_RETURN_NOT_OK(wal_->Append(rec));
  }
  ++next_seq_;
  RemoveLive(doc_id);
  std::vector<text::TokenId> ids;
  {
    std::unique_lock<std::shared_mutex> dict_lock(dict_mu_);
    ids = dict_.EncodeDocument(tokenizer_->Tokenize(value));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (tail_.num_docs() >= UINT32_MAX - 1) {
    return Status::Invalid("tail segment is full");
  }
  tail_.AppendDoc(doc_id, value, ids, attrs);
  if (df_live_.size() < dict_.num_elements()) {
    df_live_.resize(dict_.num_elements(), 0);
  }
  for (text::TokenId e : ids) ++df_live_[e];
  ++live_docs_;
  doc_map_[doc_id] =
      DocLoc{kTailSegment, static_cast<uint32_t>(tail_.num_docs() - 1)};
  upserts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status MutableFuzzyIndex::ApplyDelete(uint64_t doc_id, bool log_wal) {
  if (log_wal && wal_.has_value()) {
    WalRecord rec;
    rec.type = WalRecord::kDelete;
    rec.seq = next_seq_;
    rec.doc_id = doc_id;
    SSJOIN_RETURN_NOT_OK(wal_->Append(rec));
  }
  ++next_seq_;
  RemoveLive(doc_id);
  tail_.RecordDelete(doc_id);
  deletes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status MutableFuzzyIndex::Upsert(uint64_t doc_id, const std::string& value,
                                 const filter::AttrSet& attrs) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  SSJOIN_RETURN_NOT_OK(ApplyUpsert(doc_id, value, attrs, /*log_wal=*/true));
  PublishLocked();
  MaybeMaintainLocked();
  return Status::OK();
}

Status MutableFuzzyIndex::Delete(uint64_t doc_id) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  SSJOIN_RETURN_NOT_OK(ApplyDelete(doc_id, /*log_wal=*/true));
  PublishLocked();
  MaybeMaintainLocked();
  return Status::OK();
}

Status MutableFuzzyIndex::BulkLoad(
    const std::vector<std::pair<uint64_t, std::string>>& records) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  for (const auto& [doc_id, value] : records) {
    SSJOIN_RETURN_NOT_OK(ApplyUpsert(doc_id, value, {}, /*log_wal=*/true));
  }
  PublishLocked();
  MaybeMaintainLocked();
  return Status::OK();
}

void MutableFuzzyIndex::PublishLocked() {
  obs::ObsSpan span(&publish_us_);
  auto state = std::make_shared<EpochState>();
  state->epoch = ++epoch_;
  state->live_docs = live_docs_;
  // In global-stats mode every weight input is the cluster-wide value: the
  // postings below still hold only this shard's documents, but n, df and
  // liveness come from the accumulator fed by every shard's values — the
  // invariant that makes a sharded scatter-gather bit-identical to one
  // unsharded index.
  double n = static_cast<double>(global_mode_ ? global_live_docs_ : live_docs_);
  state->unseen_weight =
      text::QuantizeWeight(std::log(std::max<double>(2.0, n)));
  size_t num_elements = dict_.num_elements();
  if (df_live_.size() < num_elements) df_live_.resize(num_elements, 0);
  if (global_mode_ && df_global_.size() < num_elements) {
    df_global_.resize(num_elements, 0);
  }
  const std::vector<uint64_t>& df = global_mode_ ? df_global_ : df_live_;
  state->weights.resize(num_elements);
  state->tie_keys.resize(num_elements);
  state->live.resize(num_elements);
  for (text::TokenId e = 0; e < num_elements; ++e) {
    uint64_t f = df[e];
    state->live[e] = f > 0 ? 1 : 0;
    state->weights[e] = text::QuantizeWeight(text::IdfWeightFromFrequency(n, f));
    state->tie_keys[e] = dict_.KeyHash(e);
  }
  state->segments.assign(sealed_.begin(), sealed_.end());
  if (!tail_.empty()) {
    auto frozen = std::make_shared<Segment>(tail_);
    frozen->BuildPostings();
    state->segments.push_back(std::move(frozen));
  }
  published_.store(std::move(state), std::memory_order_release);
}

std::vector<text::TokenId> MutableFuzzyIndex::EncodeValueLocked(
    const std::string& value) {
  std::vector<text::TokenId> ids;
  {
    std::unique_lock<std::shared_mutex> dict_lock(dict_mu_);
    ids = dict_.EncodeDocument(tokenizer_->Tokenize(value));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void MutableFuzzyIndex::GlobalAddLocked(const std::string& value) {
  // Interning (not read-only encoding) is load-bearing: a token live only on
  // another shard must still exist in THIS dictionary, or queries containing
  // it would classify it "unseen" where the unsharded oracle knows it.
  std::vector<text::TokenId> ids = EncodeValueLocked(value);
  if (df_global_.size() < dict_.num_elements()) {
    df_global_.resize(dict_.num_elements(), 0);
  }
  for (text::TokenId e : ids) ++df_global_[e];
  ++global_live_docs_;
}

void MutableFuzzyIndex::GlobalRemoveLocked(const std::string& value) {
  std::vector<text::TokenId> ids = EncodeValueLocked(value);
  if (df_global_.size() < dict_.num_elements()) {
    df_global_.resize(dict_.num_elements(), 0);
  }
  for (text::TokenId e : ids) {
    if (df_global_[e] > 0) --df_global_[e];
  }
  if (global_live_docs_ > 0) --global_live_docs_;
}

std::optional<std::string> MutableFuzzyIndex::LiveValueLocked(
    uint64_t doc_id) const {
  auto it = doc_map_.find(doc_id);
  if (it == doc_map_.end()) return std::nullopt;
  const DocLoc& loc = it->second;
  return loc.segment == kTailSegment ? tail_.values[loc.local]
                                     : sealed_[loc.segment]->values[loc.local];
}

Status MutableFuzzyIndex::UpsertGlobal(uint64_t doc_id, const std::string& value,
                                       const filter::AttrSet& attrs,
                                       GlobalDelta* delta) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  GlobalDelta d;
  std::optional<std::string> old = LiveValueLocked(doc_id);
  SSJOIN_RETURN_NOT_OK(ApplyUpsert(doc_id, value, attrs, /*log_wal=*/true));
  global_mode_ = true;
  if (old.has_value()) {
    d.removed = *old;
    GlobalRemoveLocked(*old);
  }
  d.added = value;
  GlobalAddLocked(value);
  PublishLocked();
  MaybeMaintainLocked();
  if (delta != nullptr) *delta = std::move(d);
  return Status::OK();
}

Status MutableFuzzyIndex::DeleteGlobal(uint64_t doc_id, GlobalDelta* delta) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  GlobalDelta d;
  std::optional<std::string> old = LiveValueLocked(doc_id);
  SSJOIN_RETURN_NOT_OK(ApplyDelete(doc_id, /*log_wal=*/true));
  global_mode_ = true;
  if (old.has_value()) {
    d.removed = *old;
    GlobalRemoveLocked(*old);
  }
  PublishLocked();
  MaybeMaintainLocked();
  if (delta != nullptr) *delta = std::move(d);
  return Status::OK();
}

Status MutableFuzzyIndex::ApplyGlobalDelta(const GlobalDelta& delta) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  global_mode_ = true;
  if (delta.removed.has_value()) GlobalRemoveLocked(*delta.removed);
  if (delta.added.has_value()) GlobalAddLocked(*delta.added);
  PublishLocked();
  return Status::OK();
}

Status MutableFuzzyIndex::ResetGlobalStats(
    const std::vector<std::string>& values) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  global_mode_ = true;
  df_global_.assign(dict_.num_elements(), 0);
  global_live_docs_ = 0;
  for (const std::string& value : values) GlobalAddLocked(value);
  PublishLocked();
  return Status::OK();
}

std::vector<std::pair<uint64_t, std::string>> MutableFuzzyIndex::LiveDocs()
    const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::vector<std::pair<uint64_t, std::string>> out;
  out.reserve(doc_map_.size());
  for (const auto& [doc_id, loc] : doc_map_) {
    out.emplace_back(doc_id, loc.segment == kTailSegment
                                 ? tail_.values[loc.local]
                                 : sealed_[loc.segment]->values[loc.local]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

bool MutableFuzzyIndex::global_stats_enabled() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return global_mode_;
}

Status MutableFuzzyIndex::PersistSealedLocked(
    const std::vector<std::string>& obsolete_files) {
  if (options_.data_dir.empty()) return Status::OK();
  // Order matters for crash safety: the rotated WAL must exist before the
  // manifest that names it, and obsolete files go only after the manifest
  // rename commits. A crash between any two steps recovers from the OLD
  // manifest + OLD WAL; freshly written files are orphans that later seals
  // overwrite.
  Manifest manifest;
  manifest.options = options_.match;
  manifest.epoch = epoch_;
  manifest.last_sealed_seq = last_sealed_seq_;
  manifest.next_serial = next_serial_;
  manifest.dict_entries.reserve(dict_.num_elements());
  for (text::TokenId e = 0; e < dict_.num_elements(); ++e) {
    manifest.dict_entries.push_back(text::TokenDictionary::EntryData{
        dict_.TokenOf(e), dict_.OrdinalOf(e),
        e < df_live_.size() ? df_live_[e] : 0});
  }
  manifest.dict_num_documents = live_docs_;
  manifest.segments = seg_refs_;
  manifest.wal_file = wal_file_;
  SSJOIN_RETURN_NOT_OK(
      SaveManifest(manifest, options_.data_dir + "/" + kManifestFileName));
  for (const std::string& file : obsolete_files) {
    std::error_code ec;
    fs::remove(options_.data_dir + "/" + file, ec);  // best-effort cleanup
  }
  return Status::OK();
}

Status MutableFuzzyIndex::SealLocked() {
  if (tail_.empty()) {
    return PersistSealedLocked({});
  }
  Segment seg = std::move(tail_);
  tail_ = Segment();
  seg.serial = next_serial_++;
  seg.BuildPostings();
  auto sealed = std::make_shared<const Segment>(std::move(seg));
  sealed_.push_back(sealed);
  uint32_t new_index = static_cast<uint32_t>(sealed_.size() - 1);
  for (auto& [doc_id, loc] : doc_map_) {
    if (loc.segment == kTailSegment) loc.segment = new_index;
  }
  last_sealed_seq_ = next_seq_ - 1;

  if (!options_.data_dir.empty()) {
    std::string file = SegmentFileName(sealed->serial);
    std::string bytes = sealed->EncodeFile();
    SSJOIN_RETURN_NOT_OK(
        common::WriteFileAtomic(options_.data_dir + "/" + file, bytes));
    seg_refs_.push_back(ManifestSegmentRef{sealed->serial, file,
                                           HashString(bytes),
                                           sealed->num_docs()});
    std::string old_wal = wal_file_;
    wal_file_ = WalFileName(next_serial_);
    SSJOIN_ASSIGN_OR_RETURN(
        WalWriter writer,
        WalWriter::Create(options_.data_dir + "/" + wal_file_));
    wal_ = std::move(writer);
    SSJOIN_RETURN_NOT_OK(PersistSealedLocked({old_wal}));
  }
  seals_.fetch_add(1, std::memory_order_relaxed);
  PublishLocked();
  return Status::OK();
}

Status MutableFuzzyIndex::CompactLocked() {
  // Nothing to fold: a single tombstone-free generation and an empty tail.
  if (tail_.empty() && sealed_.size() == 1 && sealed_[0]->num_tombstones() == 0) {
    return Status::OK();
  }
  obs::ObsSpan span(&compaction_us_);
  Segment merged;
  merged.serial = next_serial_++;
  // Live docs in ascending doc_id order: deterministic bytes (and the same
  // order a from-scratch rebuild would index them in).
  std::vector<std::pair<uint64_t, DocLoc>> live(doc_map_.begin(), doc_map_.end());
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [doc_id, loc] : live) {
    const Segment& src =
        loc.segment == kTailSegment ? tail_ : *sealed_[loc.segment];
    merged.AppendDoc(doc_id, src.values[loc.local], ElementsOf(loc),
                     src.attrs[loc.local]);
  }
  merged.BuildPostings();
  auto sealed = std::make_shared<const Segment>(std::move(merged));

  std::vector<std::string> obsolete;
  for (const ManifestSegmentRef& ref : seg_refs_) obsolete.push_back(ref.file);
  sealed_.clear();
  seg_refs_.clear();
  tail_ = Segment();
  sealed_.push_back(sealed);
  doc_map_.clear();
  for (uint32_t local = 0; local < sealed->num_docs(); ++local) {
    doc_map_[sealed->doc_ids[local]] = DocLoc{0, local};
  }
  last_sealed_seq_ = next_seq_ - 1;

  if (!options_.data_dir.empty()) {
    std::string file = SegmentFileName(sealed->serial);
    std::string bytes = sealed->EncodeFile();
    SSJOIN_RETURN_NOT_OK(
        common::WriteFileAtomic(options_.data_dir + "/" + file, bytes));
    seg_refs_.push_back(ManifestSegmentRef{sealed->serial, file,
                                           HashString(bytes),
                                           sealed->num_docs()});
    std::string old_wal = wal_file_;
    obsolete.push_back(old_wal);
    wal_file_ = WalFileName(next_serial_);
    SSJOIN_ASSIGN_OR_RETURN(
        WalWriter writer,
        WalWriter::Create(options_.data_dir + "/" + wal_file_));
    wal_ = std::move(writer);
    SSJOIN_RETURN_NOT_OK(PersistSealedLocked(obsolete));
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  PublishLocked();
  return Status::OK();
}

Status MutableFuzzyIndex::Seal() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return SealLocked();
}

Status MutableFuzzyIndex::Compact() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return CompactLocked();
}

void MutableFuzzyIndex::MaybeMaintainLocked() {
  bool want_seal = options_.seal_threshold > 0 &&
                   tail_.num_docs() >= options_.seal_threshold;
  bool want_compact = options_.max_generations > 0 &&
                      sealed_.size() > options_.max_generations;
  if (!want_seal && !want_compact) return;
  if (options_.background_maintenance) {
    {
      std::lock_guard<std::mutex> lock(maint_mu_);
      maint_kick_ = true;
    }
    maint_cv_.notify_one();
    return;
  }
  // Inline maintenance: deterministic epoch numbering, mutation pays the
  // seal/compaction latency. Failures surface on the mutating call.
  if (want_seal) (void)SealLocked();
  if (options_.max_generations > 0 && sealed_.size() > options_.max_generations) {
    (void)CompactLocked();
  }
}

void MutableFuzzyIndex::BackgroundLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(maint_mu_);
      maint_cv_.wait(lock, [&] { return stopping_ || maint_kick_; });
      if (stopping_) return;
      maint_kick_ = false;
    }
    std::lock_guard<std::mutex> writer_lock(writer_mu_);
    if (options_.seal_threshold > 0 &&
        tail_.num_docs() >= options_.seal_threshold) {
      // Background failures cannot surface to a caller; the next explicit
      // Seal/Checkpoint retries and reports.
      (void)SealLocked();
    }
    if (options_.max_generations > 0 &&
        sealed_.size() > options_.max_generations) {
      (void)CompactLocked();
    }
  }
}

void MutableFuzzyIndex::SortByEpochRank(const EpochState& state,
                                        std::vector<text::TokenId>* elements) {
  std::sort(elements->begin(), elements->end(),
            [&](text::TokenId a, text::TokenId b) {
              if (state.weights[a] != state.weights[b]) {
                return state.weights[a] > state.weights[b];
              }
              if (state.tie_keys[a] != state.tie_keys[b]) {
                return state.tie_keys[a] < state.tie_keys[b];
              }
              return a < b;
            });
}

bool MutableFuzzyIndex::IsWinner(const EpochState& state, size_t segment_index,
                                 const Segment& segment, uint32_t local,
                                 uint64_t doc_id) const {
  auto it = segment.doc_states.find(doc_id);
  if (it == segment.doc_states.end() || it->second.deleted ||
      it->second.last_local != local) {
    return false;
  }
  for (size_t j = segment_index + 1; j < state.segments.size(); ++j) {
    // Any later mention — a newer version or a tombstone — supersedes.
    if (state.segments[j]->doc_states.count(doc_id) > 0) return false;
  }
  return true;
}

std::vector<MutableFuzzyIndex::Match> MutableFuzzyIndex::Lookup(
    const std::string& query, size_t k) const {
  return LookupAt(*Snapshot(), query, k);
}

std::vector<MutableFuzzyIndex::Match> MutableFuzzyIndex::LookupAt(
    const EpochState& state, const std::string& query, size_t k) const {
  return LookupAt(state, query, k, 1.0);
}

std::vector<MutableFuzzyIndex::Match> MutableFuzzyIndex::LookupAt(
    const EpochState& state, const std::string& query, size_t k,
    double target_recall) const {
  return LookupAt(state, query, k, target_recall, filter::FilterPredicate());
}

std::vector<MutableFuzzyIndex::Match> MutableFuzzyIndex::LookupAt(
    const EpochState& state, const std::string& query, size_t k,
    double target_recall, const filter::FilterPredicate& filter) const {
  // This function replicates FuzzyMatchIndex::Lookup step by step; every
  // arithmetic expression below must stay bit-for-bit in sync with it (see
  // the equivalence contract in the header). The only sanctioned deviation
  // is the target_recall prefix truncation, which at 1.0 does nothing.
  // The predicate filter only ever REMOVES candidate locals before
  // verification (each candidate's similarity is computed independently and
  // weights stay full-corpus IDF), so filtered output is bit-identical to
  // post-filtering the unfiltered output.
  std::vector<Match> out;
  if (k == 0) return out;
  std::vector<std::string> tokens = tokenizer_->Tokenize(query);
  std::vector<text::TokenId> ids;
  {
    std::shared_lock<std::shared_mutex> dict_lock(dict_mu_);
    ids = dict_.EncodeDocumentReadOnly(tokens);
  }
  // An element counts as unseen exactly when a rebuild over the epoch's
  // live records would not know it: never interned, interned after this
  // epoch, or in no live document.
  size_t unseen = 0;
  std::vector<text::TokenId> known;
  known.reserve(ids.size());
  for (text::TokenId id : ids) {
    if (id == text::kInvalidToken || id >= state.live.size() ||
        state.live[id] == 0) {
      ++unseen;
    } else {
      known.push_back(id);
    }
  }
  std::sort(known.begin(), known.end());
  known.erase(std::unique(known.begin(), known.end()), known.end());
  double query_weight = static_cast<double>(unseen) * state.unseen_weight;
  for (text::TokenId id : known) query_weight += state.weights[id];
  if (known.empty()) return out;

  double beta = query_weight - options_.match.alpha * query_weight;
  std::vector<text::TokenId> prefix = known;
  SortByEpochRank(state, &prefix);
  core::TrimSortedToPrefix(state.weights, beta, &prefix);
  if (target_recall < 1.0 && prefix.size() > 1) {
    // Approximate serving: probe only the rank-ordered head carrying
    // `target_recall` of the prefix's weight mass. The dropped tail is the
    // most frequent (cheapest-signal, longest-postings) slice of the prefix.
    double total = 0.0;
    for (text::TokenId e : prefix) total += state.weights[e];
    double kept = 0.0;
    size_t keep = 0;
    while (keep < prefix.size() && kept < target_recall * total) {
      kept += state.weights[prefix[keep]];
      ++keep;
    }
    prefix.resize(std::max<size_t>(1, keep));
  }
  std::unordered_set<text::TokenId> query_prefix(prefix.begin(), prefix.end());

  core::OverlapPredicate pred =
      core::OverlapPredicate::TwoSidedNormalized(options_.match.alpha);
  const bool filtered = !filter.empty();
  if (filtered) filter::FilterMetrics().lookups->Add(1);
  std::vector<uint32_t> locals;
  std::vector<text::TokenId> ref_prefix;
  for (size_t si = 0; si < state.segments.size(); ++si) {
    const Segment& seg = *state.segments[si];
    filter::EligibleSet eligible = filter::EligibleSet::All();
    if (filtered) {
      eligible = seg.attr_index().Eval(filter);
      if (eligible.kind() == filter::EligibleSet::Kind::kNone) {
        filter::FilterMetrics().segments_skipped->Add(1);
        continue;
      }
    }
    locals.clear();
    for (text::TokenId e : prefix) {
      std::span<const uint32_t> post = seg.Postings(e);
      locals.insert(locals.end(), post.begin(), post.end());
    }
    std::sort(locals.begin(), locals.end());
    locals.erase(std::unique(locals.begin(), locals.end()), locals.end());
    if (filtered) {
      // Compose BEFORE verification: ineligible candidates never reach the
      // per-doc prefix recomputation or the weighted-intersection verify.
      filter::FilterMetrics().candidates_in->Add(locals.size());
      eligible.FilterSorted(&locals);
      filter::FilterMetrics().candidates_kept->Add(locals.size());
    }

    for (uint32_t local : locals) {
      uint64_t doc_id = seg.doc_ids[local];
      if (!IsWinner(state, si, seg, local, doc_id)) continue;
      std::span<const text::TokenId> elems = seg.sets.elements(local);
      double set_weight = 0.0;
      for (text::TokenId e : elems) set_weight += state.weights[e];

      // The immutable index only indexes each reference set's prefix; a doc
      // is its candidate iff that prefix meets the query prefix. Recompute
      // the doc's prefix under this epoch's weights and apply the same test
      // so the candidate sets — and with them the 1e-12 acceptance band —
      // agree exactly.
      double beta_s = set_weight - pred.SSideRequired(set_weight);
      ref_prefix.assign(elems.begin(), elems.end());
      SortByEpochRank(state, &ref_prefix);
      core::TrimSortedToPrefix(state.weights, beta_s, &ref_prefix);
      bool is_candidate = false;
      for (text::TokenId e : ref_prefix) {
        if (query_prefix.count(e) > 0) {
          is_candidate = true;
          break;
        }
      }
      if (!is_candidate) continue;

      double overlap =
          kernels::IntersectWeighted(known, elems, state.weights.data());
      double uni = query_weight + set_weight - overlap;
      double jr = uni > 0.0 ? overlap / uni : 1.0;
      if (jr >= options_.match.alpha - 1e-12) out.push_back({doc_id, jr});
    }
  }

  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::optional<std::string> MutableFuzzyIndex::ValueAt(const EpochState& state,
                                                      uint64_t doc_id) const {
  for (size_t j = state.segments.size(); j-- > 0;) {
    const Segment& seg = *state.segments[j];
    auto it = seg.doc_states.find(doc_id);
    if (it == seg.doc_states.end()) continue;
    if (it->second.deleted || it->second.last_local == kNoLocalDoc) {
      return std::nullopt;
    }
    return seg.values[it->second.last_local];
  }
  return std::nullopt;
}

std::optional<filter::AttrSet> MutableFuzzyIndex::AttrsAt(
    const EpochState& state, uint64_t doc_id) const {
  for (size_t j = state.segments.size(); j-- > 0;) {
    const Segment& seg = *state.segments[j];
    auto it = seg.doc_states.find(doc_id);
    if (it == seg.doc_states.end()) continue;
    if (it->second.deleted || it->second.last_local == kNoLocalDoc) {
      return std::nullopt;
    }
    return seg.attrs[it->second.last_local];
  }
  return std::nullopt;
}

}  // namespace ssjoin::index
