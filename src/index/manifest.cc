#include "index/manifest.h"

#include <cstring>

#include "common/atomic_file.h"
#include "common/hash.h"
#include "common/payload.h"

namespace ssjoin::index {

namespace {

constexpr size_t kHeaderSize = 16;

}  // namespace

Status SaveManifest(const Manifest& manifest, const std::string& path) {
  common::PayloadWriter w;
  w.U8(manifest.options.word_tokens ? 1 : 0);
  w.U64(manifest.options.q);
  w.F64(manifest.options.alpha);
  w.U64(manifest.epoch);
  w.U64(manifest.last_sealed_seq);
  w.U64(manifest.next_serial);
  w.U64(manifest.dict_entries.size());
  for (const auto& e : manifest.dict_entries) {
    w.Str(e.token);
    w.U32(e.ordinal);
    w.U64(e.doc_frequency);
  }
  w.U64(manifest.dict_num_documents);
  w.U64(manifest.segments.size());
  for (const auto& seg : manifest.segments) {
    w.U64(seg.serial);
    w.Str(seg.file);
    w.U64(seg.checksum);
    w.U64(seg.num_docs);
  }
  w.Str(manifest.wal_file);

  const std::string& payload = w.buffer();
  uint64_t checksum = HashString(payload);
  std::string bytes;
  bytes.reserve(kHeaderSize + payload.size() + sizeof(checksum));
  bytes.append(kManifestMagic, sizeof(kManifestMagic));
  uint32_t version = kManifestVersion;
  uint32_t flags = 0;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&flags), sizeof(flags));
  bytes.append(payload);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return common::WriteFileAtomic(path, bytes);
}

Result<Manifest> LoadManifest(const std::string& path) {
  std::string bytes;
  SSJOIN_RETURN_NOT_OK(common::ReadFile(path, &bytes));
  return DecodeManifest(bytes, "'" + path + "'");
}

Result<Manifest> DecodeManifest(std::string_view bytes,
                                const std::string& context) {
  if (bytes.size() < kHeaderSize + sizeof(uint64_t)) {
    return Status::IOError("manifest " + context + " is truncated");
  }
  if (std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::IOError("manifest " + context + " has a bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  if (version != kManifestVersion && version != kManifestVersionPreAttrs) {
    return Status::Invalid("manifest " + context + " has snapshot version " +
                           std::to_string(version) + ", expected " +
                           std::to_string(kManifestVersionPreAttrs) + " or " +
                           std::to_string(kManifestVersion));
  }
  const char* payload = bytes.data() + kHeaderSize;
  size_t payload_size = bytes.size() - kHeaderSize - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored), sizeof(stored));
  if (HashString(std::string_view(payload, payload_size)) != stored) {
    return Status::IOError("manifest " + context + " checksum mismatch");
  }

  common::PayloadReader r(payload, payload_size);
  Manifest m;
  uint8_t word_tokens = 0;
  uint64_t q = 0;
  SSJOIN_RETURN_NOT_OK(r.U8(&word_tokens));
  SSJOIN_RETURN_NOT_OK(r.U64(&q));
  SSJOIN_RETURN_NOT_OK(r.F64(&m.options.alpha));
  m.options.word_tokens = word_tokens != 0;
  m.options.q = static_cast<size_t>(q);
  SSJOIN_RETURN_NOT_OK(r.U64(&m.epoch));
  SSJOIN_RETURN_NOT_OK(r.U64(&m.last_sealed_seq));
  SSJOIN_RETURN_NOT_OK(r.U64(&m.next_serial));
  uint64_t num_entries = 0;
  SSJOIN_RETURN_NOT_OK(r.U64(&num_entries));
  // Every entry takes >= 20 payload bytes; a count beyond that is corruption
  // (and would otherwise drive a giant resize before the reads fail).
  if (num_entries > payload_size / 20) {
    return Status::IOError("manifest dictionary entry count implausible");
  }
  m.dict_entries.resize(static_cast<size_t>(num_entries));
  for (auto& e : m.dict_entries) {
    SSJOIN_RETURN_NOT_OK(r.Str(&e.token));
    SSJOIN_RETURN_NOT_OK(r.U32(&e.ordinal));
    SSJOIN_RETURN_NOT_OK(r.U64(&e.doc_frequency));
  }
  SSJOIN_RETURN_NOT_OK(r.U64(&m.dict_num_documents));
  uint64_t num_segments = 0;
  SSJOIN_RETURN_NOT_OK(r.U64(&num_segments));
  if (num_segments > payload_size / 32) {
    return Status::IOError("manifest segment count implausible");
  }
  m.segments.resize(static_cast<size_t>(num_segments));
  for (auto& seg : m.segments) {
    SSJOIN_RETURN_NOT_OK(r.U64(&seg.serial));
    SSJOIN_RETURN_NOT_OK(r.Str(&seg.file));
    SSJOIN_RETURN_NOT_OK(r.U64(&seg.checksum));
    SSJOIN_RETURN_NOT_OK(r.U64(&seg.num_docs));
  }
  SSJOIN_RETURN_NOT_OK(r.Str(&m.wal_file));
  if (!r.AtEnd()) {
    return Status::IOError("manifest payload has trailing bytes");
  }
  return m;
}

}  // namespace ssjoin::index
