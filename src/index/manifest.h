#ifndef SSJOIN_INDEX_MANIFEST_H_
#define SSJOIN_INDEX_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "simjoin/fuzzy_match.h"
#include "text/dictionary.h"

namespace ssjoin::index {

/// Snapshot-format v3/v4: the same "SSJSNAPS" container as the serve-layer
/// snapshots (magic, u32 version, u32 flags, payload, u64 FNV-1a trailer)
/// whose payload is a *manifest* describing a mutable index's durable state
/// instead of one materialized immutable index: match options, epoch, the
/// global dictionary, the sealed-generation list (with per-segment file
/// checksums) and the active WAL's name. v1/v2 payloads remain
/// immutable-index snapshots; a v1/v2 file is upgraded by loading it as a
/// single sealed generation (serve::UpgradeSnapshotToMutable).
///
/// v4 has the same payload layout as v3; the bump marks an index whose
/// segments/WAL may carry structured attributes (segment v2, WAL "SSJWALV2"),
/// so pre-attribute binaries refuse to open it instead of silently dropping
/// attribute data. The loader accepts v3 and v4 and always writes v4.
inline constexpr uint32_t kManifestVersion = 4;
inline constexpr uint32_t kManifestVersionPreAttrs = 3;
inline constexpr char kManifestMagic[8] = {'S', 'S', 'J', 'S', 'N', 'A', 'P', 'S'};
inline constexpr char kManifestFileName[] = "MANIFEST";

/// One sealed generation as recorded by the manifest. `checksum` is the
/// FNV-1a hash of the whole segment file; load refuses a file that does not
/// match (a half-written or swapped segment must never be trusted).
struct ManifestSegmentRef {
  uint64_t serial = 0;
  std::string file;  // basename inside the data directory
  uint64_t checksum = 0;
  uint64_t num_docs = 0;
};

struct Manifest {
  simjoin::FuzzyMatchIndex::Options options;
  uint64_t epoch = 0;
  /// Sequence number of the last operation whose effect is inside a sealed
  /// segment; WAL records at or below it are stale and skipped at replay.
  uint64_t last_sealed_seq = 0;
  uint64_t next_serial = 1;
  std::vector<text::TokenDictionary::EntryData> dict_entries;
  uint64_t dict_num_documents = 0;
  std::vector<ManifestSegmentRef> segments;
  std::string wal_file;  // basename of the active WAL
};

/// Atomically writes the manifest (temp file + rename; see WriteFileAtomic).
Status SaveManifest(const Manifest& manifest, const std::string& path);

/// Loads and validates a v3/v4 manifest. A v1/v2 snapshot file yields a
/// clean Invalid status naming the version, so callers can fall back to the
/// immutable-snapshot loader.
Result<Manifest> LoadManifest(const std::string& path);

/// Decodes and validates v3/v4 manifest bytes that arrived from somewhere
/// other than the local filesystem (replication fetches). `context` names
/// the source in error messages the way LoadManifest uses the path.
Result<Manifest> DecodeManifest(std::string_view bytes,
                                const std::string& context);

}  // namespace ssjoin::index

#endif  // SSJOIN_INDEX_MANIFEST_H_
