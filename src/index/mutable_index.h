#ifndef SSJOIN_INDEX_MUTABLE_INDEX_H_
#define SSJOIN_INDEX_MUTABLE_INDEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/sets.h"
#include "filter/attr.h"
#include "filter/predicate.h"
#include "index/manifest.h"
#include "index/segment.h"
#include "index/wal.h"
#include "obs/metrics.h"
#include "simjoin/fuzzy_match.h"
#include "text/tokenizer.h"

namespace ssjoin::index {

/// Knobs of a MutableFuzzyIndex.
struct MutableIndexOptions {
  /// Tokenization / similarity options, identical in meaning to the
  /// immutable FuzzyMatchIndex's.
  simjoin::FuzzyMatchIndex::Options match;
  /// Data directory for the manifest, sealed segment files and the WAL.
  /// Empty = purely in-memory (no durability; Seal/Compact still work).
  std::string data_dir;
  /// Auto-seal the tail once it holds this many docs (0 = only explicit
  /// Seal calls).
  size_t seal_threshold = 256;
  /// Auto-compact once the sealed generation count exceeds this
  /// (0 = only explicit Compact calls).
  size_t max_generations = 4;
  /// Apply the two thresholds from a background maintenance thread instead
  /// of inline in the mutating call. Results are identical either way (a
  /// seal or compaction never changes lookup results, only epoch numbers);
  /// background mode keeps mutation latency flat at the cost of timing-
  /// dependent epoch numbering.
  bool background_maintenance = false;
};

/// The effect of one owner-shard mutation on the cluster-wide IDF
/// statistics: the raw document value that stopped being live and/or the one
/// that became live. Raw values (not token ids) travel between shards so
/// each shard tokenizes and interns with its own dictionary — token id
/// spaces never have to agree, only token *content* does.
struct GlobalDelta {
  std::optional<std::string> removed;
  std::optional<std::string> added;
};

/// One epoch's immutable read view: the per-element IDF weights, liveness
/// flags and tie keys frozen at publish time, plus the segment list (sealed
/// generations shared by pointer, the tail copied and frozen). Lookups
/// against one EpochState are bit-identical no matter how the index mutates
/// afterwards.
struct EpochState {
  uint64_t epoch = 0;
  uint64_t live_docs = 0;
  double unseen_weight = 0.0;
  core::WeightVector weights;
  std::vector<uint64_t> tie_keys;
  std::vector<uint8_t> live;
  std::vector<std::shared_ptr<const Segment>> segments;
};

/// \brief An incrementally mutable fuzzy-lookup index: an append-only
/// mutable tail over sealed immutable generations, with tombstones for
/// deletes, epoch-numbered atomically-published read snapshots, an
/// append-only WAL and a v3 manifest for durability.
///
/// ## Equivalence contract
/// After ANY sequence of Upsert/Delete/Seal/Compact calls, Lookup results
/// are bitwise identical to a freshly built immutable FuzzyMatchIndex over
/// the live records sorted by ascending doc_id (with Match::id in place of
/// Match::ref_index). Three mechanisms carry the proof:
///   1. IDF weights are quantized to multiples of 2^-26 (text::QuantizeWeight)
///      on both build paths, making every weighted sum exact and therefore
///      independent of summation order — token-id numbering drops out.
///   2. The element order is tie-keyed by content hash
///      (ElementOrder::ByDecreasingWeightTieKeyed), so both sides sort
///      same-weight elements identically despite different id spaces.
///   3. Candidate generation replicates the immutable pipeline exactly:
///      the query prefix is computed with the shared TrimSortedToPrefix,
///      and each candidate is kept only if its own (recomputed, per-epoch)
///      reference-side prefix intersects the query prefix — the same test
///      the immutable index's prebuilt prefix inverted index performs.
/// The one caveat: if two distinct same-weight elements collide on their
/// 64-bit content hash, the two sides may order them differently; with FNV
/// over distinct keys this is a ~2^-64-per-pair event we accept.
///
/// ## Concurrency
/// All mutations serialize on a writer mutex and finish by publishing a new
/// EpochState through an atomic shared_ptr swap — readers never take the
/// writer lock and never block (they share the token dictionary under a
/// shared_mutex only while encoding the query). Publish cost is
/// O(vocabulary + tail), paid per mutation; batch ingest should use
/// BulkLoad, which publishes once.
///
/// ## Durability (data_dir set)
/// Every mutation appends to the WAL (flushed before it is applied). Seal
/// writes the tail as a segment file, rotates the WAL and atomically
/// rewrites the manifest; Open() restores the sealed state from the
/// manifest (validating per-segment checksums) and replays unsealed WAL
/// records, skipping stale ones. A kill at any point loses at most the
/// record being written when the process died.
class MutableFuzzyIndex {
 public:
  /// One lookup result: the document's caller-assigned id plus the exact
  /// Jaccard resemblance (bitwise equal to the immutable index's similarity
  /// for the same logical corpus).
  struct Match {
    uint64_t id;
    double similarity;
  };

  /// Point-in-time structural counters (for obs and status endpoints).
  struct Stats {
    uint64_t epoch = 0;
    uint64_t sealed_segments = 0;
    uint64_t tail_docs = 0;
    uint64_t tombstones = 0;
    uint64_t live_docs = 0;
    uint64_t upserts = 0;
    uint64_t deletes = 0;
    uint64_t seals = 0;
    uint64_t compactions = 0;
  };

  /// Creates an empty index. With a data_dir, initializes the directory
  /// (fresh WAL + manifest); fails if it already holds a manifest — use
  /// Open for that.
  static Result<std::unique_ptr<MutableFuzzyIndex>> Create(
      const MutableIndexOptions& options);

  /// Restores an index from `options.data_dir`: loads the manifest,
  /// validates and decodes every sealed segment, replays unsealed WAL
  /// records and publishes the recovered epoch. Match options come from the
  /// manifest (the caller's `options.match` is ignored).
  static Result<std::unique_ptr<MutableFuzzyIndex>> Open(
      const MutableIndexOptions& options);

  ~MutableFuzzyIndex();
  MutableFuzzyIndex(const MutableFuzzyIndex&) = delete;
  MutableFuzzyIndex& operator=(const MutableFuzzyIndex&) = delete;

  /// Inserts or replaces the document `doc_id` (optionally with structured
  /// attributes), then publishes a new epoch. An upsert always replaces the
  /// whole attribute set — re-upserting without attributes clears them.
  Status Upsert(uint64_t doc_id, const std::string& value,
                const filter::AttrSet& attrs = {});

  /// Deletes `doc_id` (a no-op tombstone if absent), then publishes.
  Status Delete(uint64_t doc_id);

  /// Upserts many records with a single epoch publish at the end — the bulk
  /// ingest path (publish cost is O(vocabulary), so per-record publishing
  /// would make loading quadratic-ish).
  Status BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& records);

  /// Seals the tail into an immutable generation; with a data_dir this
  /// writes the segment file, rotates the WAL and rewrites the manifest.
  /// A no-op (manifest refresh only) when the tail is empty.
  Status Seal();

  /// Merges every generation plus the tail into one sealed generation,
  /// dropping all tombstones. Lookup results are unchanged.
  Status Compact();

  /// The current epoch's read view. Never null; cheap (one atomic load).
  std::shared_ptr<const EpochState> Snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Lookup against the current epoch. See the equivalence contract above.
  std::vector<Match> Lookup(const std::string& query, size_t k) const;

  /// Lookup pinned to an explicit epoch (e.g. one captured at request
  /// admission, so a batch runs against the epoch its cache key names).
  std::vector<Match> LookupAt(const EpochState& state, const std::string& query,
                              size_t k) const;

  /// LookupAt with a recall knob: `target_recall` < 1.0 probes only the
  /// rank-ordered head of the query prefix that retains at least that
  /// fraction of the prefix's weight mass (at least one element), trading
  /// the frequent tail's long posting scans for possible misses. Every
  /// returned match is still exact and above alpha — precision stays 1.0.
  /// `target_recall` >= 1.0 is byte-identical to the 3-argument overload.
  std::vector<Match> LookupAt(const EpochState& state, const std::string& query,
                              size_t k, double target_recall) const;

  /// Filtered lookup: composes the per-segment boolean-expression attribute
  /// index with similarity candidate generation. Each segment's eligible-doc
  /// set (by `filter`, k-of-n counting match) is intersected with the
  /// similarity posting candidates BEFORE verification, so ineligible docs
  /// never reach the verify loop. Results are bit-identical to running the
  /// unfiltered lookup with unbounded k, dropping records whose attributes
  /// fail `filter.Matches`, and truncating to `k` — the contract the
  /// `filtered_lookup` fuzz scenario enforces. An empty filter is
  /// byte-identical to the unfiltered overload.
  std::vector<Match> LookupAt(const EpochState& state, const std::string& query,
                              size_t k, double target_recall,
                              const filter::FilterPredicate& filter) const;

  /// The live value of `doc_id` in the given epoch, if any.
  std::optional<std::string> ValueAt(const EpochState& state,
                                     uint64_t doc_id) const;

  /// The live attribute set of `doc_id` in the given epoch, if the doc is
  /// live (an attribute-less doc yields an empty set).
  std::optional<filter::AttrSet> AttrsAt(const EpochState& state,
                                         uint64_t doc_id) const;

  /// \name Global-statistics mode (sharded serving)
  ///
  /// A shard holds only its slice of the documents, but bit-identity with an
  /// unsharded index requires every weight input — live-document count n,
  /// per-token document frequency, token liveness — to be the CLUSTER-WIDE
  /// value. The methods below latch the index into global mode: published
  /// epochs draw n/df/live from a cluster-wide accumulator fed by raw
  /// document values, while the local postings keep holding only this
  /// shard's documents. Every value that is live anywhere in the cluster is
  /// tokenized and *interned* here, so a query token that exists only on
  /// another shard still classifies as "known" exactly as the oracle would.
  ///
  /// Caller contract (enforced by shard::ShardedLookupIndex): once any
  /// Global call is made, ALL mutations must go through the Global API (the
  /// owner shard via UpsertGlobal/DeleteGlobal, every other shard via
  /// ApplyGlobalDelta), and after BulkLoad or Open the accumulator must be
  /// rebuilt with ResetGlobalStats over every live value in the cluster.
  /// Global statistics are deliberately not persisted — restart rebuilds
  /// them from the shards' durable live sets, so the manifest format is
  /// untouched.
  /// @{

  /// Owner-shard upsert: applies the document locally (WAL-logged like
  /// Upsert), folds the value change into the global accumulator, publishes
  /// once, and reports what changed via `delta` for broadcast to the other
  /// shards. Attributes stay owner-local: they never affect IDF weights, so
  /// the broadcast delta carries only raw values.
  Status UpsertGlobal(uint64_t doc_id, const std::string& value,
                      const filter::AttrSet& attrs, GlobalDelta* delta);

  /// Owner-shard delete; see UpsertGlobal.
  Status DeleteGlobal(uint64_t doc_id, GlobalDelta* delta);

  /// Non-owner shard: folds another shard's mutation into the global
  /// accumulator (no local documents change) and publishes a new epoch.
  Status ApplyGlobalDelta(const GlobalDelta& delta);

  /// Rebuilds the global accumulator from scratch over `values` (every live
  /// value in the whole cluster, this shard's included) with one publish.
  Status ResetGlobalStats(const std::vector<std::string>& values);

  /// This shard's live (doc_id, value) pairs in ascending doc_id order —
  /// the input other shards need for ResetGlobalStats after a restart.
  std::vector<std::pair<uint64_t, std::string>> LiveDocs() const;

  /// Whether a Global call has latched this index into global-stats mode.
  bool global_stats_enabled() const;

  /// @}

  uint64_t epoch() const { return Snapshot()->epoch; }
  const text::Tokenizer& tokenizer() const { return *tokenizer_; }
  const MutableIndexOptions& options() const { return options_; }

  Stats GetStats() const;

 private:
  static constexpr uint32_t kTailSegment = UINT32_MAX;

  struct DocLoc {
    uint32_t segment;  // index into sealed_, or kTailSegment
    uint32_t local;
  };

  explicit MutableFuzzyIndex(const MutableIndexOptions& options);

  void StartBackground();
  /// obs::Registry provider mirroring Stats() as `index.*` metrics.
  void CollectMetrics(std::vector<obs::MetricPoint>* out) const;

  Status ApplyUpsert(uint64_t doc_id, const std::string& value,
                     const filter::AttrSet& attrs, bool log_wal);
  Status ApplyDelete(uint64_t doc_id, bool log_wal);
  /// Tokenizes `value`, interning new tokens, and returns the sorted unique
  /// token ids. Requires writer_mu_.
  std::vector<text::TokenId> EncodeValueLocked(const std::string& value);
  /// Folds one live value into / out of the global accumulator. Requires
  /// writer_mu_; callers publish afterwards.
  void GlobalAddLocked(const std::string& value);
  void GlobalRemoveLocked(const std::string& value);
  /// The currently live value of `doc_id`, if any. Requires writer_mu_.
  std::optional<std::string> LiveValueLocked(uint64_t doc_id) const;
  /// Removes `doc_id` from the live set (doc map + df + live count); returns
  /// whether it was live.
  bool RemoveLive(uint64_t doc_id);
  std::span<const text::TokenId> ElementsOf(const DocLoc& loc) const;

  /// Builds and atomically publishes the next EpochState.
  void PublishLocked();
  Status SealLocked();
  Status CompactLocked();
  /// Writes segment file(s) + rotated WAL + manifest for the current sealed
  /// state; `obsolete_files` are removed after the manifest rename commits.
  Status PersistSealedLocked(const std::vector<std::string>& obsolete_files);
  void MaybeMaintainLocked();
  void BackgroundLoop();

  bool IsWinner(const EpochState& state, size_t segment_index,
                const Segment& segment, uint32_t local, uint64_t doc_id) const;
  /// Sorts element ids into increasing epoch-order rank: decreasing weight,
  /// ties by content hash then id — the comparator of
  /// ElementOrder::ByDecreasingWeightTieKeyed.
  static void SortByEpochRank(const EpochState& state,
                              std::vector<text::TokenId>* elements);

  MutableIndexOptions options_;
  std::unique_ptr<text::Tokenizer> tokenizer_;

  /// Guards the dictionary: readers (query encoding) shared, the writer
  /// exclusive while interning. Taken after writer_mu_, never before.
  mutable std::shared_mutex dict_mu_;
  text::TokenDictionary dict_;

  /// Serializes all mutation, sealing and publishing.
  mutable std::mutex writer_mu_;
  std::vector<std::shared_ptr<const Segment>> sealed_;
  /// Manifest entries mirroring sealed_ (file name + checksum per
  /// generation); only populated when a data_dir is set.
  std::vector<ManifestSegmentRef> seg_refs_;
  Segment tail_;
  std::vector<uint64_t> df_live_;
  uint64_t live_docs_ = 0;
  /// Global-stats mode (see the Global API section): when latched, published
  /// epochs compute weights from these cluster-wide accumulators instead of
  /// the local df_live_/live_docs_.
  bool global_mode_ = false;
  std::vector<uint64_t> df_global_;
  uint64_t global_live_docs_ = 0;
  std::unordered_map<uint64_t, DocLoc> doc_map_;
  uint64_t epoch_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t last_sealed_seq_ = 0;
  uint64_t next_serial_ = 1;
  std::optional<WalWriter> wal_;
  std::string wal_file_;

  std::atomic<std::shared_ptr<const EpochState>> published_;

  std::atomic<uint64_t> upserts_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> seals_{0};
  std::atomic<uint64_t> compactions_{0};
  obs::Histogram publish_us_;
  obs::Histogram compaction_us_;
  std::atomic<uint64_t> provider_id_{0};

  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool stopping_ = false;
  bool maint_kick_ = false;
  std::thread maintenance_;
};

}  // namespace ssjoin::index

#endif  // SSJOIN_INDEX_MUTABLE_INDEX_H_
