#ifndef SSJOIN_INDEX_WAL_H_
#define SSJOIN_INDEX_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "filter/attr.h"

namespace ssjoin::index {

/// WAL format versions: 1 = pre-attribute bodies ("SSJWALV1" magic), 2 =
/// bodies carry the doc's attribute set ("SSJWALV2"). New logs are always
/// created at the current version.
inline constexpr uint32_t kWalVersionNoAttrs = 1;
inline constexpr uint32_t kWalVersion = 2;

/// One logical mutation in the write-ahead log. `seq` is the index-wide
/// monotone operation number; records whose seq is at or below the
/// manifest's last_sealed_seq are stale (their effect is already inside a
/// sealed segment) and are skipped at replay.
struct WalRecord {
  enum Type : uint8_t { kUpsert = 1, kDelete = 2 };

  uint8_t type = kUpsert;
  uint64_t seq = 0;
  uint64_t doc_id = 0;
  std::string value;         // empty for deletes
  filter::AttrSet attrs;     // structured attributes; empty for deletes
};

/// \brief Append-only writer for the tail's write-ahead log.
///
/// File layout: an 8-byte magic, then per record
/// `[u32 body_len][body][u64 FNV-1a(body)]` where body is the
/// PayloadWriter encoding `[u8 type][u64 seq][u64 doc_id][str value]`
/// followed, since the "SSJWALV2" magic, by the doc's attribute set. The
/// reader accepts both magics — a V1 log written before the attribute
/// format bump replays with empty attribute sets — while new logs are
/// always created V2. Each append is flushed to the OS before the mutation
/// is applied, so a crashed process loses at most the record it was
/// writing — which the reader detects as a torn tail and truncates.
class WalWriter {
 public:
  /// Creates (truncating) a new WAL at `path` and writes the (V2) magic.
  static Result<WalWriter> Create(const std::string& path);

  /// Opens an existing WAL for appending. The caller must have validated /
  /// truncated it with ReadWal first, and passes the version ReadWal
  /// reported so appended record bodies match the file's magic.
  static Result<WalWriter> OpenForAppend(const std::string& path,
                                         uint32_t version);

  WalWriter(WalWriter&& other) noexcept
      : file_(other.file_), version_(other.version_) {
    other.file_ = nullptr;
  }
  WalWriter& operator=(WalWriter&& other) noexcept {
    if (this != &other) {
      Close();
      file_ = other.file_;
      version_ = other.version_;
      other.file_ = nullptr;
    }
    return *this;
  }
  ~WalWriter() { Close(); }

  Status Append(const WalRecord& record);

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  WalWriter(std::FILE* file, uint32_t version)
      : file_(file), version_(version) {}

  std::FILE* file_ = nullptr;
  uint32_t version_ = 2;
};

/// Result of scanning a WAL: the cleanly-decoded records and the byte length
/// of the valid prefix (everything past it is a torn or corrupt tail the
/// caller should truncate before appending again).
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  /// The format the file's magic declared (1 = pre-attribute, 2 = current).
  uint32_t version = 2;
};

/// Reads every intact record of the WAL at `path`. A torn or checksum-bad
/// tail terminates the scan cleanly (it is expected after a crash); a
/// missing file or bad magic is an error.
Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace ssjoin::index

#endif  // SSJOIN_INDEX_WAL_H_
