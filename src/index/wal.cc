#include "index/wal.h"

#include <cstring>

#include "common/atomic_file.h"
#include "common/hash.h"
#include "common/payload.h"

namespace ssjoin::index {

namespace {

constexpr char kWalMagic[8] = {'S', 'S', 'J', 'W', 'A', 'L', 'V', '1'};
// A record body is three scalars plus the value; anything claiming to be
// larger than this is corruption, not data.
constexpr uint32_t kMaxRecordBody = 1u << 30;

}  // namespace

Result<WalWriter> WalWriter::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create WAL '" + path + "'");
  }
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), f) != sizeof(kWalMagic) ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IOError("cannot write WAL magic to '" + path + "'");
  }
  return WalWriter(f);
}

Result<WalWriter> WalWriter::OpenForAppend(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open WAL '" + path + "' for appending");
  }
  return WalWriter(f);
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) {
    return Status::Internal("append to a closed WAL");
  }
  common::PayloadWriter body;
  body.U8(record.type);
  body.U64(record.seq);
  body.U64(record.doc_id);
  body.Str(record.value);
  const std::string& b = body.buffer();
  uint32_t len = static_cast<uint32_t>(b.size());
  uint64_t checksum = HashString(b);
  bool ok = std::fwrite(&len, 1, sizeof(len), file_) == sizeof(len) &&
            std::fwrite(b.data(), 1, b.size(), file_) == b.size() &&
            std::fwrite(&checksum, 1, sizeof(checksum), file_) == sizeof(checksum) &&
            std::fflush(file_) == 0;
  if (!ok) {
    return Status::IOError("short write to WAL");
  }
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& path) {
  std::string bytes;
  SSJOIN_RETURN_NOT_OK(common::ReadFile(path, &bytes));
  if (bytes.size() < sizeof(kWalMagic) ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IOError("WAL '" + path + "' has a bad magic");
  }
  WalReadResult out;
  size_t pos = sizeof(kWalMagic);
  out.valid_bytes = pos;
  for (;;) {
    if (bytes.size() - pos < sizeof(uint32_t)) break;
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    if (len > kMaxRecordBody ||
        bytes.size() - pos - sizeof(len) < len + sizeof(uint64_t)) {
      break;  // torn tail
    }
    const char* body = bytes.data() + pos + sizeof(len);
    uint64_t stored = 0;
    std::memcpy(&stored, body + len, sizeof(stored));
    if (HashString(std::string_view(body, len)) != stored) break;

    common::PayloadReader r(body, len);
    WalRecord rec;
    if (!r.U8(&rec.type).ok() || !r.U64(&rec.seq).ok() ||
        !r.U64(&rec.doc_id).ok() || !r.Str(&rec.value).ok() || !r.AtEnd() ||
        (rec.type != WalRecord::kUpsert && rec.type != WalRecord::kDelete)) {
      break;  // checksum matched but the body is not a record we understand
    }
    out.records.push_back(std::move(rec));
    pos += sizeof(len) + len + sizeof(uint64_t);
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace ssjoin::index
