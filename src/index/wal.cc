#include "index/wal.h"

#include <cstring>

#include "common/atomic_file.h"
#include "common/hash.h"
#include "common/payload.h"

namespace ssjoin::index {

namespace {

constexpr char kWalMagicV1[8] = {'S', 'S', 'J', 'W', 'A', 'L', 'V', '1'};
constexpr char kWalMagicV2[8] = {'S', 'S', 'J', 'W', 'A', 'L', 'V', '2'};
// A record body is three scalars plus the value and attributes; anything
// claiming to be larger than this is corruption, not data.
constexpr uint32_t kMaxRecordBody = 1u << 30;

}  // namespace

Result<WalWriter> WalWriter::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create WAL '" + path + "'");
  }
  if (std::fwrite(kWalMagicV2, 1, sizeof(kWalMagicV2), f) !=
          sizeof(kWalMagicV2) ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IOError("cannot write WAL magic to '" + path + "'");
  }
  return WalWriter(f, 2);
}

Result<WalWriter> WalWriter::OpenForAppend(const std::string& path,
                                           uint32_t version) {
  if (version != 1 && version != 2) {
    return Status::Internal("unsupported WAL version " +
                            std::to_string(version));
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open WAL '" + path + "' for appending");
  }
  return WalWriter(f, version);
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) {
    return Status::Internal("append to a closed WAL");
  }
  common::PayloadWriter body;
  body.U8(record.type);
  body.U64(record.seq);
  body.U64(record.doc_id);
  body.Str(record.value);
  if (version_ >= 2) {
    record.attrs.EncodeTo(&body);
  } else if (!record.attrs.empty()) {
    // A V1 log (opened for append after a pre-upgrade restart) cannot carry
    // attributes; losing them silently would break the replay contract.
    return Status::Internal(
        "cannot append a record with attributes to a version-1 WAL");
  }
  const std::string& b = body.buffer();
  uint32_t len = static_cast<uint32_t>(b.size());
  uint64_t checksum = HashString(b);
  bool ok = std::fwrite(&len, 1, sizeof(len), file_) == sizeof(len) &&
            std::fwrite(b.data(), 1, b.size(), file_) == b.size() &&
            std::fwrite(&checksum, 1, sizeof(checksum), file_) == sizeof(checksum) &&
            std::fflush(file_) == 0;
  if (!ok) {
    return Status::IOError("short write to WAL");
  }
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& path) {
  std::string bytes;
  SSJOIN_RETURN_NOT_OK(common::ReadFile(path, &bytes));
  uint32_t version = 0;
  if (bytes.size() >= sizeof(kWalMagicV2) &&
      std::memcmp(bytes.data(), kWalMagicV2, sizeof(kWalMagicV2)) == 0) {
    version = 2;
  } else if (bytes.size() >= sizeof(kWalMagicV1) &&
             std::memcmp(bytes.data(), kWalMagicV1, sizeof(kWalMagicV1)) ==
                 0) {
    version = 1;
  } else {
    return Status::IOError("WAL '" + path + "' has a bad magic");
  }
  WalReadResult out;
  out.version = version;
  size_t pos = sizeof(kWalMagicV2);
  out.valid_bytes = pos;
  for (;;) {
    if (bytes.size() - pos < sizeof(uint32_t)) break;
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    if (len > kMaxRecordBody ||
        bytes.size() - pos - sizeof(len) < len + sizeof(uint64_t)) {
      break;  // torn tail
    }
    const char* body = bytes.data() + pos + sizeof(len);
    uint64_t stored = 0;
    std::memcpy(&stored, body + len, sizeof(stored));
    if (HashString(std::string_view(body, len)) != stored) break;

    common::PayloadReader r(body, len);
    WalRecord rec;
    bool body_ok = r.U8(&rec.type).ok() && r.U64(&rec.seq).ok() &&
                   r.U64(&rec.doc_id).ok() && r.Str(&rec.value).ok();
    if (body_ok && version >= 2) {
      body_ok = filter::AttrSet::DecodeFrom(&r, &rec.attrs).ok();
    }
    if (!body_ok || !r.AtEnd() ||
        (rec.type != WalRecord::kUpsert && rec.type != WalRecord::kDelete)) {
      break;  // checksum matched but the body is not a record we understand
    }
    out.records.push_back(std::move(rec));
    pos += sizeof(len) + len + sizeof(uint64_t);
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace ssjoin::index
