#include "core/ssjoin_plan.h"

#include <algorithm>

#include "common/string_util.h"

namespace ssjoin::core {

const char* SSJoinStrategyName(SSJoinStrategy strategy) {
  switch (strategy) {
    case SSJoinStrategy::kBasic:
      return "basic";
    case SSJoinStrategy::kPrefixFilter:
      return "prefix-filter";
    case SSJoinStrategy::kCostBased:
      return "cost-based";
  }
  return "unknown";
}

Result<DecodedRelation> TableToSetsRelation(const engine::Table& table) {
  SSJOIN_ASSIGN_OR_RETURN(size_t a_col, table.schema().FieldIndex("a"));
  SSJOIN_ASSIGN_OR_RETURN(size_t b_col, table.schema().FieldIndex("b"));
  SSJOIN_ASSIGN_OR_RETURN(size_t w_col, table.schema().FieldIndex("weight"));
  SSJOIN_ASSIGN_OR_RETURN(size_t n_col, table.schema().FieldIndex("norm"));
  SSJOIN_ASSIGN_OR_RETURN(size_t r_col, table.schema().FieldIndex("rank"));

  DecodedRelation out;
  int64_t max_group = -1;
  int64_t max_element = -1;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    max_group = std::max(max_group, table.GetValue(a_col, row).int64());
    max_element = std::max(max_element, table.GetValue(b_col, row).int64());
  }
  if (max_group >= static_cast<int64_t>(table.num_rows())) {
    return Status::Invalid("group ids must be dense 0..n-1");
  }
  // Transient per-group rows; compacted into the flat CSR store below.
  std::vector<std::vector<text::TokenId>> docs(static_cast<size_t>(max_group + 1));
  std::vector<double> norms(docs.size(), 0.0);
  out.weights.assign(static_cast<size_t>(max_element + 1), 0.0);
  std::vector<uint32_t> ranks(static_cast<size_t>(max_element + 1), 0);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    int64_t a = table.GetValue(a_col, row).int64();
    int64_t b = table.GetValue(b_col, row).int64();
    if (a < 0 || b < 0) return Status::Invalid("negative group/element id");
    docs[static_cast<size_t>(a)].push_back(static_cast<text::TokenId>(b));
    norms[static_cast<size_t>(a)] = table.GetValue(n_col, row).AsDouble();
    out.weights[static_cast<size_t>(b)] = table.GetValue(w_col, row).AsDouble();
    ranks[static_cast<size_t>(b)] =
        static_cast<uint32_t>(table.GetValue(r_col, row).int64());
  }
  SSJOIN_ASSIGN_OR_RETURN(
      out.rel, BuildSetsRelation(std::move(docs), out.weights, std::move(norms)));
  // Rebuild the element order from the rank column. Ranks recovered from the
  // table may be sparse (elements missing from this relation keep rank 0),
  // so re-rank by (stored rank, id) to get a valid permutation preserving
  // the relative order of present elements.
  out.ranks = ranks;
  WeightVector rank_keys(ranks.size());
  for (size_t e = 0; e < ranks.size(); ++e) {
    rank_keys[e] = -static_cast<double>(ranks[e]);  // decreasing weight = rank asc
  }
  out.order = ElementOrder::ByDecreasingWeight(rank_keys);
  return out;
}

namespace {

/// Merged weights + ordering covering both sides' element-id ranges (the
/// sides come from the same dictionary in any sane pipeline, so entries
/// agree where both are present; the merge just widens coverage).
struct MergedContext {
  WeightVector weights;
  ElementOrder order;

  SSJoinContext Context() const { return {&weights, &order}; }
};

MergedContext MergeContexts(const DecodedRelation& a, const DecodedRelation& b) {
  MergedContext merged;
  size_t n = std::max(a.weights.size(), b.weights.size());
  merged.weights.assign(n, 0.0);
  std::vector<uint32_t> ranks(n, 0);
  for (size_t e = 0; e < b.weights.size(); ++e) {
    merged.weights[e] = b.weights[e];
    ranks[e] = b.ranks[e];
  }
  for (size_t e = 0; e < a.weights.size(); ++e) {
    if (a.weights[e] != 0.0) merged.weights[e] = a.weights[e];
    if (a.ranks[e] != 0) ranks[e] = a.ranks[e];
  }
  WeightVector rank_keys(n);
  for (size_t e = 0; e < n; ++e) rank_keys[e] = -static_cast<double>(ranks[e]);
  merged.order = ElementOrder::ByDecreasingWeight(rank_keys);
  return merged;
}

}  // namespace

namespace {

class SSJoinNodeImpl final : public engine::PlanNode {
 public:
  SSJoinNodeImpl(engine::PlanPtr r, engine::PlanPtr s, OverlapPredicate pred,
                 SSJoinStrategy strategy)
      : r_(std::move(r)),
        s_(std::move(s)),
        pred_(std::move(pred)),
        strategy_(strategy) {}

  Result<engine::Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(engine::Table rt, r_->Execute());
    SSJOIN_ASSIGN_OR_RETURN(engine::Table st, s_->Execute());
    SSJoinStrategy chosen = strategy_;
    if (strategy_ == SSJoinStrategy::kCostBased) {
      SSJOIN_ASSIGN_OR_RETURN(SSJoinAlgorithm algorithm, Choose(rt, st));
      chosen = algorithm == SSJoinAlgorithm::kBasic ? SSJoinStrategy::kBasic
                                                    : SSJoinStrategy::kPrefixFilter;
    }
    if (chosen == SSJoinStrategy::kBasic) {
      return BasicSSJoinPlan(rt, st, pred_);
    }
    return PrefixFilterSSJoinPlan(rt, st, pred_);
  }

  std::string Describe() const override {
    return StringPrintf("SSJoin(%s, strategy=%s)", pred_.ToString().c_str(),
                        SSJoinStrategyName(strategy_));
  }

  std::vector<engine::PlanPtr> children() const override { return {r_, s_}; }

 private:
  Result<SSJoinAlgorithm> Choose(const engine::Table& rt,
                                 const engine::Table& st) const {
    SSJOIN_ASSIGN_OR_RETURN(DecodedRelation r, TableToSetsRelation(rt));
    SSJOIN_ASSIGN_OR_RETURN(DecodedRelation s, TableToSetsRelation(st));
    MergedContext merged = MergeContexts(r, s);
    return ChooseAlgorithm(r.rel, s.rel, pred_, merged.Context());
  }

  engine::PlanPtr r_;
  engine::PlanPtr s_;
  OverlapPredicate pred_;
  SSJoinStrategy strategy_;
};

}  // namespace

engine::PlanPtr SSJoinNode(engine::PlanPtr r, engine::PlanPtr s,
                           OverlapPredicate pred, SSJoinStrategy strategy) {
  return std::make_shared<SSJoinNodeImpl>(std::move(r), std::move(s),
                                          std::move(pred), strategy);
}

Result<std::string> ExplainSSJoin(const engine::Table& r, const engine::Table& s,
                                  const OverlapPredicate& pred) {
  SSJOIN_ASSIGN_OR_RETURN(DecodedRelation dr, TableToSetsRelation(r));
  SSJOIN_ASSIGN_OR_RETURN(DecodedRelation ds, TableToSetsRelation(s));
  MergedContext merged = MergeContexts(dr, ds);
  CostEstimate est = EstimateCosts(dr.rel, ds.rel, pred, merged.Context());
  HybridRoutingDecision hybrid =
      ChooseHybridTier(dr.rel, ds.rel, pred, merged.Context());
  return StringPrintf("SSJoin %s\n  %s\n  %s\n  physical plan: %s\n",
                      pred.ToString().c_str(), est.ToString().c_str(),
                      hybrid.ToString().c_str(),
                      SSJoinAlgorithmName(est.chosen));
}

}  // namespace ssjoin::core
