#include "core/sets.h"

#include <algorithm>

#include "common/string_util.h"

namespace ssjoin::core {

WeightVector MaterializeWeights(const text::TokenDictionary& dict,
                                const text::WeightProvider& provider) {
  WeightVector weights(dict.num_elements());
  for (text::TokenId id = 0; id < weights.size(); ++id) {
    weights[id] = provider.Weight(id);
  }
  return weights;
}

Result<SetsRelation> BuildSetsRelation(std::vector<std::vector<text::TokenId>> docs,
                                       const WeightVector& weights,
                                       std::optional<std::vector<double>> norms) {
  if (norms && norms->size() != docs.size()) {
    return Status::Invalid(StringPrintf("norms has %zu entries for %zu documents",
                                        norms->size(), docs.size()));
  }
  size_t total_input_elements = 0;
  for (const auto& doc : docs) total_input_elements += doc.size();
  SSJOIN_RETURN_NOT_OK(SetStore::CheckCapacity(docs.size(), total_input_elements));

  SetsRelation rel;
  rel.store.Reserve(docs.size(), total_input_elements);
  rel.set_weights.reserve(docs.size());
  for (auto& set : docs) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    double wt = 0.0;
    for (text::TokenId id : set) {
      if (id == text::kInvalidToken || id >= weights.size()) {
        return Status::Invalid("document contains an element missing from weights");
      }
      wt += weights[id];
    }
    rel.store.AppendSet(set);
    rel.set_weights.push_back(wt);
  }
  rel.norms = norms ? std::move(*norms) : rel.set_weights;
  return rel;
}

}  // namespace ssjoin::core
