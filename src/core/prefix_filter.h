#ifndef SSJOIN_CORE_PREFIX_FILTER_H_
#define SSJOIN_CORE_PREFIX_FILTER_H_

#include <span>
#include <vector>

#include "core/order.h"
#include "core/predicate.h"
#include "core/sets.h"

namespace ssjoin::core {

/// \brief `prefix_beta(s)` of §4.2: the shortest prefix of `set` in
/// increasing `order`-rank whose element weights sum to **more than** `beta`.
///
/// Returns element ids (not sorted by id — sorted by rank). If the whole
/// set's weight is <= beta, the whole set is returned (no filtering).
/// A clearly negative beta (beta < -epsilon) means the caller's required
/// overlap exceeds the set's total weight: the group can never satisfy the
/// predicate and the prefix is empty (the group is pruned). A beta within
/// floating-point noise of zero conservatively yields a one-element prefix.
std::vector<text::TokenId> ComputePrefix(std::span<const text::TokenId> set,
                                         const WeightVector& weights,
                                         const ElementOrder& order, double beta);

/// \brief In-place variant for hot per-group loops: `*out` is overwritten
/// with the prefix, reusing its capacity across calls.
void ComputePrefixInto(std::span<const text::TokenId> set,
                       const WeightVector& weights, const ElementOrder& order,
                       double beta, std::vector<text::TokenId>* out);

/// \brief The accumulation step of ComputePrefix, split out for callers that
/// sort by an equivalent comparator instead of a materialized ElementOrder
/// (the mutable index sorts by per-epoch weights + content tie keys):
/// `*set` must already be in increasing order-rank and is trimmed in place
/// to the prefix, with bit-identical cut decisions to ComputePrefixInto.
void TrimSortedToPrefix(const WeightVector& weights, double beta,
                        std::vector<text::TokenId>* set);

/// \brief The prefix-filtered image of a whole relation, stored as a flat
/// CSR SetStore (group g's prefix is `prefixes.view(g)`, in rank order):
/// for group g, `prefixes.view(g)` = prefix_{beta_g}(rel.set(g)) where
/// `beta_g = wt(set(g)) - required_g` and `required_g` is the predicate's
/// one-side overlap bound for that group (OverlapPredicate::RSideRequired /
/// SSideRequired). Groups whose required overlap exceeds their total weight
/// can never join and get an empty prefix (they are pruned).
struct PrefixFilteredRelation {
  SetStore prefixes;

  size_t total_prefix_elements() const { return prefixes.total_elements(); }
};

/// Which side of the predicate a relation plays (determines whether
/// RSideRequired or SSideRequired supplies beta).
enum class JoinSide { kR, kS };

/// \brief Applies the prefix filter to every group of `rel` (§4.2, extended
/// to normalized predicates per the bullets at the end of that section).
PrefixFilteredRelation PrefixFilterRelation(const SetsRelation& rel,
                                            const WeightVector& weights,
                                            const ElementOrder& order,
                                            const OverlapPredicate& pred,
                                            JoinSide side);

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_PREFIX_FILTER_H_
