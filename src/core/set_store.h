#ifndef SSJOIN_CORE_SET_STORE_H_
#define SSJOIN_CORE_SET_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "text/dictionary.h"

namespace ssjoin::core {

/// Index of a group (a distinct R.A / S.A value) within a SetStore.
using GroupId = uint32_t;

/// \brief Cheap non-owning view of one group's element list inside a
/// SetStore. Converts implicitly to `std::span<const text::TokenId>` so it
/// plugs into every merge/overlap routine; carries its GroupId so callers
/// can flow a view through a pipeline without a parallel index variable.
///
/// Views borrow from the owning SetStore and are invalidated by any mutation
/// of it (Append*, Clear, move) — the usual span lifetime rules.
class SetView {
 public:
  constexpr SetView() = default;
  constexpr SetView(std::span<const text::TokenId> elems, GroupId group)
      : elems_(elems), group_(group) {}

  constexpr const text::TokenId* data() const { return elems_.data(); }
  constexpr size_t size() const { return elems_.size(); }
  constexpr bool empty() const { return elems_.empty(); }
  constexpr auto begin() const { return elems_.begin(); }
  constexpr auto end() const { return elems_.end(); }
  constexpr text::TokenId operator[](size_t i) const { return elems_[i]; }
  constexpr std::span<const text::TokenId> elems() const { return elems_; }
  constexpr operator std::span<const text::TokenId>() const { return elems_; }
  constexpr GroupId group() const { return group_; }

 private:
  std::span<const text::TokenId> elems_;
  GroupId group_ = 0;
};

/// \brief Flat CSR (compressed sparse row) storage for a collection of sets:
/// `offsets` has `num_groups + 1` entries and group g's elements live in
/// `token_ids[offsets[g], offsets[g+1])`. One allocation per column instead
/// of one per group — sequential scans walk contiguous memory, snapshots
/// serialize the arrays verbatim, and a future mmap load is a cast away.
///
/// An optional `weights` column (empty, or exactly one double per element)
/// lets owners materialize per-element weights next to the ids, turning the
/// random gather `w[token_ids[i]]` of verification loops into a sequential
/// read.
///
/// The store itself does not require sortedness — SetsRelation stores
/// canonical (sorted, unique) sets, PrefixFilteredRelation stores prefixes
/// in rank order. Offsets are uint32_t by design: builders reject inputs
/// with more than UINT32_MAX groups or total elements instead of silently
/// truncating.
class SetStore {
 public:
  SetStore() : offsets_(1, 0) {}

  size_t num_groups() const { return offsets_.size() - 1; }
  /// O(1): the CSR tail offset is the total element count.
  size_t total_elements() const { return offsets_.back(); }

  SetView view(GroupId g) const { return SetView(elements(g), g); }

  std::span<const text::TokenId> elements(GroupId g) const {
    return {token_ids_.data() + offsets_[g],
            token_ids_.data() + offsets_[g + 1]};
  }

  bool has_element_weights() const { return !weights_.empty(); }

  /// Per-element weights of group g; empty span when no weights column is
  /// materialized.
  std::span<const double> element_weights(GroupId g) const {
    if (weights_.empty()) return {};
    return {weights_.data() + offsets_[g], weights_.data() + offsets_[g + 1]};
  }

  /// \name Raw columns (serialization, index building)
  /// @{
  const std::vector<uint32_t>& offsets() const { return offsets_; }
  const std::vector<text::TokenId>& token_ids() const { return token_ids_; }
  const std::vector<double>& weights() const { return weights_; }
  /// @}

  /// Pre-sizes the columns for `groups` groups / `elements` total elements.
  void Reserve(size_t groups, size_t elements) {
    offsets_.reserve(groups + 1);
    token_ids_.reserve(elements);
  }

  /// Appends one group holding `elems` (copied). Callers must have bounded
  /// group/element counts to uint32 range (see CheckCapacity).
  void AppendSet(std::span<const text::TokenId> elems) {
    token_ids_.insert(token_ids_.end(), elems.begin(), elems.end());
    offsets_.push_back(static_cast<uint32_t>(token_ids_.size()));
  }

  /// Appends every group of `other` in order, preserving contents.
  void AppendStore(const SetStore& other) {
    token_ids_.insert(token_ids_.end(), other.token_ids_.begin(),
                      other.token_ids_.end());
    uint32_t base = offsets_.back();
    for (size_t g = 1; g < other.offsets_.size(); ++g) {
      offsets_.push_back(base + other.offsets_[g]);
    }
  }

  /// Materializes the per-element weights column as `token_weights[id]` for
  /// every stored element id. All ids must be < token_weights.size().
  void AttachElementWeights(std::span<const double> token_weights) {
    weights_.resize(token_ids_.size());
    for (size_t i = 0; i < token_ids_.size(); ++i) {
      weights_[i] = token_weights[token_ids_[i]];
    }
  }

  void Clear() {
    offsets_.assign(1, 0);
    token_ids_.clear();
    weights_.clear();
  }

  /// Fails when `groups` groups / `elements` total elements would overflow
  /// the uint32 CSR offsets (silent truncation is never acceptable).
  static Status CheckCapacity(size_t groups, size_t elements);

  /// Reassembles a store from raw columns (typically deserialized),
  /// validating the CSR invariants: offsets non-empty, starting at 0,
  /// monotone non-decreasing, ending at token_ids.size(); weights empty or
  /// one per element.
  static Result<SetStore> FromParts(std::vector<uint32_t> offsets,
                                    std::vector<text::TokenId> token_ids,
                                    std::vector<double> weights = {});

  friend bool operator==(const SetStore& a, const SetStore& b) {
    return a.offsets_ == b.offsets_ && a.token_ids_ == b.token_ids_ &&
           a.weights_ == b.weights_;
  }

 private:
  std::vector<uint32_t> offsets_;
  std::vector<text::TokenId> token_ids_;
  std::vector<double> weights_;
};

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_SET_STORE_H_
