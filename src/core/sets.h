#ifndef SSJOIN_CORE_SETS_H_
#define SSJOIN_CORE_SETS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "text/dictionary.h"
#include "text/weights.h"

namespace ssjoin::core {

/// Dense per-element weights, indexed by text::TokenId. The core executors
/// work on this materialized form rather than virtual WeightProvider calls;
/// build one with MaterializeWeights.
using WeightVector = std::vector<double>;

/// Index of a group (a distinct R.A / S.A value) within a SetsRelation.
using GroupId = uint32_t;

/// \brief The normalized input of the SSJoin operator: one weighted set per
/// group (per distinct A-value), in First Normal Form conceptually — here
/// stored columnar for efficiency.
///
/// `sets[g]` is canonical (sorted by element id, duplicate-free; multiset
/// occurrences were made distinct by ordinal encoding upstream).
/// `norms[g]` is the group's norm column (Figure 1): by default the set's
/// weight, but callers may supply e.g. string lengths.
/// `set_weights[g]` caches wt(sets[g]).
struct SetsRelation {
  std::vector<std::vector<text::TokenId>> sets;
  std::vector<double> norms;
  std::vector<double> set_weights;

  size_t num_groups() const { return sets.size(); }

  /// Total number of (group, element) rows in the 1NF representation.
  size_t total_elements() const {
    size_t n = 0;
    for (const auto& s : sets) n += s.size();
    return n;
  }
};

/// \brief Materializes provider weights for all elements of a dictionary.
WeightVector MaterializeWeights(const text::TokenDictionary& dict,
                                const text::WeightProvider& provider);

/// \brief Builds a SetsRelation from encoded documents.
///
/// Each document's ids are canonicalized (sorted, deduplicated — duplicates
/// cannot normally occur after ordinal encoding). If `norms` is provided it
/// must have one entry per document; otherwise norms default to set weights.
/// Documents containing kInvalidToken are rejected.
Result<SetsRelation> BuildSetsRelation(
    std::vector<std::vector<text::TokenId>> docs, const WeightVector& weights,
    std::optional<std::vector<double>> norms = std::nullopt);

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_SETS_H_
