#ifndef SSJOIN_CORE_SETS_H_
#define SSJOIN_CORE_SETS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/set_store.h"
#include "text/dictionary.h"
#include "text/weights.h"

namespace ssjoin::core {

/// Dense per-element weights, indexed by text::TokenId. The core executors
/// work on this materialized form rather than virtual WeightProvider calls;
/// build one with MaterializeWeights.
using WeightVector = std::vector<double>;

/// \brief The normalized input of the SSJoin operator: one weighted set per
/// group (per distinct A-value), in First Normal Form conceptually — stored
/// as one flat CSR SetStore plus per-group norm columns.
///
/// `set(g)` is canonical (sorted by element id, duplicate-free; multiset
/// occurrences were made distinct by ordinal encoding upstream).
/// `norms[g]` is the group's norm column (Figure 1): by default the set's
/// weight, but callers may supply e.g. string lengths.
/// `set_weights[g]` caches wt(set(g)).
struct SetsRelation {
  SetStore store;
  std::vector<double> norms;
  std::vector<double> set_weights;

  size_t num_groups() const { return store.num_groups(); }

  /// Total number of (group, element) rows in the 1NF representation.
  /// O(1): the CSR offsets' tail entry.
  size_t total_elements() const { return store.total_elements(); }

  /// Group g's canonical element list as a borrowing view.
  SetView set(GroupId g) const { return store.view(g); }
};

/// \brief Materializes provider weights for all elements of a dictionary.
WeightVector MaterializeWeights(const text::TokenDictionary& dict,
                                const text::WeightProvider& provider);

/// \brief Builds a SetsRelation from encoded documents.
///
/// The nested `docs` vectors are the builder's transient input; they are
/// canonicalized (sorted, deduplicated — duplicates cannot normally occur
/// after ordinal encoding) and compacted into the flat CSR store, whose
/// columns are pre-reserved from the input sizes. If `norms` is provided it
/// must have one entry per document; otherwise norms default to set weights.
/// Documents containing kInvalidToken, or inputs exceeding the uint32 CSR
/// capacity (> UINT32_MAX groups or total elements), are rejected.
Result<SetsRelation> BuildSetsRelation(
    std::vector<std::vector<text::TokenId>> docs, const WeightVector& weights,
    std::optional<std::vector<double>> norms = std::nullopt);

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_SETS_H_
