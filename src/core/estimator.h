#ifndef SSJOIN_CORE_ESTIMATOR_H_
#define SSJOIN_CORE_ESTIMATOR_H_

#include <cstdint>

#include "common/result.h"
#include "core/ssjoin.h"

namespace ssjoin::core {

/// \brief Sampling-based estimate of an SSJoin's output cardinality.
///
/// §5 observes that "the time required depends crucially on the output size
/// besides the input relation size", and §7 calls for cost-conscious
/// choices; a cost-based optimizer therefore needs an output-size estimate.
/// This estimator runs the join for a uniform sample of R-groups against the
/// full S and scales up — an unbiased estimator of the true output size,
/// with cost proportional to the sampling fraction.
struct SizeEstimate {
  /// Estimated |R SSJoin S| (scaled from the sample).
  double estimated_pairs = 0.0;
  /// Groups actually sampled (min(sample_size, |R|)).
  size_t sampled_groups = 0;
  /// Result pairs observed for the sample.
  size_t sample_pairs = 0;
};

/// \brief Estimates the SSJoin output size from `sample_size` R-groups
/// (uniform, without replacement, deterministic in `seed`). With
/// `sample_size >= |R|` the estimate is exact.
Result<SizeEstimate> EstimateResultSize(const SetsRelation& r,
                                        const SetsRelation& s,
                                        const OverlapPredicate& pred,
                                        const SSJoinContext& ctx,
                                        size_t sample_size, uint64_t seed);

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_ESTIMATOR_H_
