#ifndef SSJOIN_CORE_INVERTED_INDEX_H_
#define SSJOIN_CORE_INVERTED_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/sets.h"

namespace ssjoin::core {

/// \brief Inverted index over a SetStore's sets (or prefixes):
/// element -> sorted list of containing groups. This is the hash table of
/// the equi-join on B that all indexed SSJoin executors build — hoisted here
/// so the serial (core/ssjoin.cc) and parallel (exec/parallel_ssjoin.cc)
/// implementations share one definition. Construction is a two-pass counting
/// scan over the store's flat token column; Lookup is const and safe to call
/// concurrently.
class InvertedIndex {
 public:
  InvertedIndex(const SetStore& store, size_t num_elements) {
    offsets_.assign(num_elements + 1, 0);
    for (text::TokenId e : store.token_ids()) ++offsets_[e + 1];
    for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
    lists_.resize(offsets_.back());
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (GroupId g = 0; g < store.num_groups(); ++g) {
      for (text::TokenId e : store.elements(g)) lists_[cursor[e]++] = g;
    }
  }

  /// Groups containing element `e`, in increasing group id.
  std::pair<const GroupId*, const GroupId*> Lookup(text::TokenId e) const {
    return {lists_.data() + offsets_[e], lists_.data() + offsets_[e + 1]};
  }

  size_t total_postings() const { return lists_.size(); }

 private:
  std::vector<uint32_t> offsets_;
  std::vector<GroupId> lists_;
};

// (The weighted-overlap merge that used to live here is now
// kernels::IntersectWeighted — src/kernels owns every hot intersection
// loop, with the same ascending-token accumulation order the parallel
// executors rely on for bit-equal output.)

/// Largest element id appearing in either relation (0 when both are empty):
/// one linear pass over each store's contiguous token column.
inline size_t MaxElementId(const SetsRelation& r, const SetsRelation& s) {
  size_t max_id = 0;
  for (text::TokenId e : r.store.token_ids()) {
    max_id = std::max<size_t>(max_id, e);
  }
  for (text::TokenId e : s.store.token_ids()) {
    max_id = std::max<size_t>(max_id, e);
  }
  return max_id;
}

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_INVERTED_INDEX_H_
