#ifndef SSJOIN_CORE_COST_MODEL_H_
#define SSJOIN_CORE_COST_MODEL_H_

#include <string>

#include "core/ssjoin.h"

namespace ssjoin::core {

/// \brief Cost estimates for the candidate physical plans of one SSJoin
/// invocation, in abstract row-visit units.
///
/// §5 of the paper observes that neither the basic nor the prefix-filtered
/// implementation always wins (basic wins at low thresholds) and concludes
/// ("we must proceed with a cost-based choice that is sensitive to the data
/// characteristics", §7). This module implements that choice from exactly
/// the statistics a relational optimizer would have: per-element join-key
/// frequencies.
struct CostEstimate {
  /// Exact size of the equi-join on B: sum_e fR(e) * fS(e).
  size_t basic_join_rows = 0;
  /// Size of the prefix equi-join: sum_e pR(e) * pS(e).
  size_t prefix_join_rows = 0;
  /// Estimated verification work of the prefix plan (candidate merges).
  double prefix_verify_cost = 0.0;
  /// Modeled total costs.
  double basic_cost = 0.0;
  double prefix_cost = 0.0;
  /// The plan the model picks.
  SSJoinAlgorithm chosen = SSJoinAlgorithm::kPrefixFilterInline;

  std::string ToString() const;
};

/// \brief Estimates plan costs and picks basic vs prefix-filter-inline.
///
/// The estimate computes both sides' prefixes (cheap: O(n log n) in the
/// total element count, a small fraction of either plan's join work), then
/// compares the modeled costs:
///   basic  ~ basic_join_rows * (1 + log2(basic_join_rows) * kSortFactor)
///   prefix ~ prefix_setup + prefix_join_rows * (1 + kVerifyFactor * avg_set)
CostEstimate EstimateCosts(const SetsRelation& r, const SetsRelation& s,
                           const OverlapPredicate& pred, const SSJoinContext& ctx);

/// \brief Convenience: estimate and return the chosen algorithm.
SSJoinAlgorithm ChooseAlgorithm(const SetsRelation& r, const SetsRelation& s,
                                const OverlapPredicate& pred,
                                const SSJoinContext& ctx);

/// \brief The hybrid planner's tier choice for `--algorithm hybrid`
/// (src/approx): exact prefix filter or the MinHash-LSH approximate tier.
///
/// The prefix filter degrades on frequent-token-heavy inputs — every set
/// containing a frequent element lands in that element's posting list, so
/// the prefix equi-join blows up quadratically in the token frequency while
/// LSH bucket sizes stay bounded by signature collisions. The router
/// therefore measures how much of the element mass sits on frequent tokens
/// and sends skew-heavy inputs to the approximate tier.
struct HybridRoutingDecision {
  /// A token is "frequent" when its combined R+S frequency reaches this
  /// (max(kHybridMinFrequency, 5% of the total group count)).
  size_t frequency_threshold = 0;
  /// Fraction of all element occurrences that lie on frequent tokens.
  double frequent_token_share = 0.0;
  /// Total element occurrences across both sides (the share's denominator).
  size_t total_occurrences = 0;
  /// kApprox when frequent_token_share >= kHybridShareCutoff, else
  /// kPrefixFilterInline.
  SSJoinAlgorithm chosen = SSJoinAlgorithm::kPrefixFilterInline;

  std::string ToString() const;
};

/// Tokens this common across R+S are "frequent" even in tiny inputs.
inline constexpr size_t kHybridMinFrequency = 4;
/// Share of element occurrences on frequent tokens at/above which the hybrid
/// planner routes to the approximate tier.
inline constexpr double kHybridShareCutoff = 0.5;

/// \brief Routes one hybrid SSJoin invocation: computes the frequent-token
/// share from the same per-element frequency statistics the cost model uses
/// and picks kApprox or kPrefixFilterInline. Deterministic in the inputs.
HybridRoutingDecision ChooseHybridTier(const SetsRelation& r,
                                       const SetsRelation& s,
                                       const OverlapPredicate& pred,
                                       const SSJoinContext& ctx);

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_COST_MODEL_H_
