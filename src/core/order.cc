#include "core/order.h"

#include <algorithm>
#include <numeric>

namespace ssjoin::core {

namespace {

std::vector<uint32_t> PermutationToRank(const std::vector<uint32_t>& perm) {
  std::vector<uint32_t> rank(perm.size());
  for (uint32_t pos = 0; pos < perm.size(); ++pos) rank[perm[pos]] = pos;
  return rank;
}

}  // namespace

ElementOrder ElementOrder::ByDecreasingWeight(const WeightVector& weights) {
  std::vector<uint32_t> perm(weights.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  return ElementOrder(PermutationToRank(perm));
}

ElementOrder ElementOrder::ByDecreasingWeightTieKeyed(
    const WeightVector& weights, std::span<const uint64_t> tie_keys) {
  SSJOIN_DCHECK(tie_keys.size() == weights.size());
  std::vector<uint32_t> perm(weights.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    if (tie_keys[a] != tie_keys[b]) return tie_keys[a] < tie_keys[b];
    return a < b;
  });
  return ElementOrder(PermutationToRank(perm));
}

ElementOrder ElementOrder::ByIncreasingWeight(const WeightVector& weights) {
  std::vector<uint32_t> perm(weights.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    if (weights[a] != weights[b]) return weights[a] < weights[b];
    return a < b;
  });
  return ElementOrder(PermutationToRank(perm));
}

ElementOrder ElementOrder::ByIncreasingFrequency(const text::TokenDictionary& dict) {
  std::vector<uint32_t> perm(dict.num_elements());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    if (dict.DocFrequency(a) != dict.DocFrequency(b)) {
      return dict.DocFrequency(a) < dict.DocFrequency(b);
    }
    return a < b;
  });
  return ElementOrder(PermutationToRank(perm));
}

ElementOrder ElementOrder::ById(size_t num_elements) {
  std::vector<uint32_t> rank(num_elements);
  std::iota(rank.begin(), rank.end(), 0);
  return ElementOrder(std::move(rank));
}

Result<ElementOrder> ElementOrder::FromRanks(std::vector<uint32_t> rank) {
  std::vector<bool> seen(rank.size(), false);
  for (uint32_t r : rank) {
    if (r >= rank.size() || seen[r]) {
      return Status::Invalid("element order ranks are not a permutation");
    }
    seen[r] = true;
  }
  return ElementOrder(std::move(rank));
}

ElementOrder ElementOrder::Random(size_t num_elements, uint64_t seed) {
  std::vector<uint32_t> perm(num_elements);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&perm);
  return ElementOrder(PermutationToRank(perm));
}

}  // namespace ssjoin::core
