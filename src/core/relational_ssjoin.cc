#include "core/relational_ssjoin.h"

#include "engine/expr.h"

#include <algorithm>
#include <numeric>

namespace ssjoin::core {

using engine::AggKind;
using engine::AggSpec;
using engine::DataType;
using engine::Table;

Result<Table> ToNormalizedTable(const SetsRelation& rel, const WeightVector& weights,
                                const ElementOrder& order) {
  Table out{engine::Schema({{"a", DataType::kInt64},
                            {"b", DataType::kInt64},
                            {"weight", DataType::kFloat64},
                            {"norm", DataType::kFloat64},
                            {"rank", DataType::kInt64}})};
  out.Reserve(rel.total_elements());
  for (GroupId g = 0; g < rel.num_groups(); ++g) {
    for (text::TokenId e : rel.set(g)) {
      if (e >= weights.size() || e >= order.num_elements()) {
        return Status::Invalid("element id not covered by weights/order");
      }
      SSJOIN_RETURN_NOT_OK(out.AppendRow({engine::Value(static_cast<int64_t>(g)),
                                          engine::Value(static_cast<int64_t>(e)),
                                          engine::Value(weights[e]),
                                          engine::Value(rel.norms[g]),
                                          engine::Value(static_cast<int64_t>(
                                              order.Rank(e)))}));
    }
  }
  return out;
}

namespace {

/// The HAVING clause of Definition 1 as a declarative engine expression:
/// AND_i (overlap >= c_i + rc_i * r_norm + sc_i * s_norm), with a small
/// epsilon absorbing floating-point summation-order differences (matching
/// OverlapPredicate::Test).
engine::ExprPtr HavingExpr(const OverlapPredicate& pred) {
  constexpr double kEps = 1e-9;
  engine::ExprPtr conj;
  for (const ThresholdExpr& e : pred.exprs()) {
    engine::ExprPtr rhs = engine::Lit(e.constant - kEps);
    if (e.r_norm_coeff != 0.0) {
      rhs = engine::Add(rhs, engine::Mul(engine::Lit(e.r_norm_coeff),
                                         engine::Col("r_norm")));
    }
    if (e.s_norm_coeff != 0.0) {
      rhs = engine::Add(rhs, engine::Mul(engine::Lit(e.s_norm_coeff),
                                         engine::Col("s_norm")));
    }
    engine::ExprPtr conjunct = engine::Ge(engine::Col("overlap"), rhs);
    conj = conj ? engine::And(std::move(conj), std::move(conjunct))
                : std::move(conjunct);
  }
  // An empty predicate accepts every co-occurring pair.
  return conj ? conj : engine::Ge(engine::Col("overlap"), engine::Lit(0.0));
}

/// Group-by (r.a, s.a) over a joined table carrying both sides' norms, with
/// the SSJoin HAVING clause. `a_col`/`a_r_col` etc. name the columns.
Result<Table> GroupAndHaving(const Table& joined, const std::string& r_a,
                             const std::string& s_a, const std::string& weight,
                             const std::string& r_norm, const std::string& s_norm,
                             const OverlapPredicate& pred) {
  std::vector<AggSpec> aggs = {{AggKind::kSum, weight, "overlap"},
                               {AggKind::kMin, r_norm, "r_norm"},
                               {AggKind::kMin, s_norm, "s_norm"}};
  SSJOIN_ASSIGN_OR_RETURN(Table grouped,
                          engine::HashGroupBy(joined, {r_a, s_a}, aggs));
  SSJOIN_ASSIGN_OR_RETURN(Table filtered,
                          engine::FilterWhere(grouped, HavingExpr(pred)));
  SSJOIN_ASSIGN_OR_RETURN(Table projected,
                          engine::Project(filtered, {r_a, s_a, "overlap"}));
  return engine::Rename(projected, {{r_a, "r_a"}, {s_a, "s_a"}});
}

}  // namespace

Result<Table> BasicSSJoinPlan(const Table& r, const Table& s,
                              const OverlapPredicate& pred) {
  // Equi-join R.b = S.b. Right-side duplicate names acquire the "_r" suffix.
  SSJOIN_ASSIGN_OR_RETURN(Table joined, engine::HashEquiJoin(r, s, {"b"}, {"b"}));
  return GroupAndHaving(joined, "a", "a_r", "weight", "norm", "norm_r", pred);
}

Result<Table> PrefixFilterPlan(const Table& input, const OverlapPredicate& pred,
                               bool r_side) {
  // Groupwise processing (§4.3.3): per group, scan in rank order and keep
  // the shortest prefix whose weights sum to more than
  // wt(group) - required(norm).
  engine::GroupFunction fn = [&pred, r_side](const Table& group) -> Result<Table> {
    SSJOIN_ASSIGN_OR_RETURN(size_t weight_col, group.schema().FieldIndex("weight"));
    SSJOIN_ASSIGN_OR_RETURN(size_t norm_col, group.schema().FieldIndex("norm"));
    SSJOIN_ASSIGN_OR_RETURN(Table ordered, engine::OrderBy(group, {"rank"}));
    double total = 0.0;
    for (size_t i = 0; i < ordered.num_rows(); ++i) {
      total += ordered.GetValue(weight_col, i).AsDouble();
    }
    double norm = ordered.num_rows() > 0 ? ordered.GetValue(norm_col, 0).AsDouble()
                                         : 0.0;
    double required =
        r_side ? pred.RSideRequired(norm) : pred.SSideRequired(norm);
    double beta = total - required;
    constexpr double kPruneEps = 1e-6;
    std::vector<size_t> keep;
    if (beta >= -kPruneEps) {
      double cum = 0.0;
      for (size_t i = 0; i < ordered.num_rows(); ++i) {
        keep.push_back(i);
        cum += ordered.GetValue(weight_col, i).AsDouble();
        if (cum > beta + kPruneEps) break;
      }
    }
    return ordered.Take(keep);
  };
  return engine::GroupwiseApply(input, {"a"}, fn);
}

Result<Table> PrefixFilterSSJoinPlan(const Table& r, const Table& s,
                                     const OverlapPredicate& pred) {
  SSJOIN_ASSIGN_OR_RETURN(Table r_pref, PrefixFilterPlan(r, pred, /*r_side=*/true));
  SSJOIN_ASSIGN_OR_RETURN(Table s_pref, PrefixFilterPlan(s, pred, /*r_side=*/false));

  // Candidate pairs: equi-join of the prefixes on b, projected to the pair
  // of group ids, deduplicated.
  SSJOIN_ASSIGN_OR_RETURN(Table pref_join,
                          engine::HashEquiJoin(r_pref, s_pref, {"b"}, {"b"}));
  SSJOIN_ASSIGN_OR_RETURN(Table cand_proj, engine::Project(pref_join, {"a", "a_r"}));
  SSJOIN_ASSIGN_OR_RETURN(Table cand_renamed,
                          engine::Rename(cand_proj, {{"a", "ca"}, {"a_r", "cs"}}));
  SSJOIN_ASSIGN_OR_RETURN(Table candidates, engine::Distinct(cand_renamed));

  // Re-join the candidates with both base relations (T.R.A = R.A and
  // T.S.A = S.A with R.B = S.B), then group and verify — Figure 8's top.
  SSJOIN_ASSIGN_OR_RETURN(Table with_r,
                          engine::HashEquiJoin(candidates, r, {"ca"}, {"a"}));
  SSJOIN_ASSIGN_OR_RETURN(Table with_both,
                          engine::HashEquiJoin(with_r, s, {"cs", "b"}, {"a", "b"}));
  // with_both columns: ca, cs, a, b, weight, norm, rank,
  //                    a_r, b_r, weight_r, norm_r, rank_r
  return GroupAndHaving(with_both, "ca", "cs", "weight", "norm", "norm_r", pred);
}

}  // namespace ssjoin::core
