#ifndef SSJOIN_CORE_PREDICATE_H_
#define SSJOIN_CORE_PREDICATE_H_

#include <string>
#include <vector>

namespace ssjoin::core {

/// \brief One conjunct of an SSJoin predicate (Definition 1): a required
/// overlap of the form
///
///   Overlap_B(a_r, a_s) >= constant + r_norm_coeff * norm(a_r)
///                                   + s_norm_coeff * norm(a_s)
///
/// This linear family covers every instantiation in the paper: absolute
/// overlap (`constant` only), 1-sided normalized (`alpha * R.norm`), 2-sided
/// normalized, and — because a conjunction of thresholds is their maximum —
/// `alpha * max(R.norm, S.norm)` as two conjuncts.
struct ThresholdExpr {
  double constant = 0.0;
  double r_norm_coeff = 0.0;
  double s_norm_coeff = 0.0;

  double Eval(double r_norm, double s_norm) const {
    return constant + r_norm_coeff * r_norm + s_norm_coeff * s_norm;
  }
};

/// \brief Conjunction of overlap thresholds: `AND_i { Overlap >= e_i }`.
///
/// SSJoin additionally requires the pair of groups to share at least one
/// element (the paper's standing assumption that thresholds are positive;
/// pairs with empty intersection are never produced).
class OverlapPredicate {
 public:
  OverlapPredicate() = default;

  /// `Overlap >= alpha` (Example 2, absolute overlap).
  static OverlapPredicate Absolute(double alpha) {
    OverlapPredicate p;
    p.And({alpha, 0.0, 0.0});
    return p;
  }
  /// `Overlap >= alpha * R.norm` (1-sided normalized overlap; also the
  /// Jaccard-containment reduction of Example 3).
  static OverlapPredicate OneSidedNormalized(double alpha) {
    OverlapPredicate p;
    p.And({0.0, alpha, 0.0});
    return p;
  }
  /// `Overlap >= alpha * R.norm AND Overlap >= alpha * S.norm`, i.e.
  /// `Overlap >= alpha * max(R.norm, S.norm)` (2-sided normalized overlap).
  static OverlapPredicate TwoSidedNormalized(double alpha) {
    OverlapPredicate p;
    p.And({0.0, alpha, 0.0});
    p.And({0.0, 0.0, alpha});
    return p;
  }

  /// Adds a conjunct; returns *this for chaining.
  OverlapPredicate& And(ThresholdExpr expr) {
    exprs_.push_back(expr);
    return *this;
  }

  /// The exact required overlap for a concrete pair: max_i e_i(r, s).
  /// At least 0 (overlaps are never negative).
  double RequiredOverlap(double r_norm, double s_norm) const {
    double req = 0.0;
    for (const ThresholdExpr& e : exprs_) {
      double v = e.Eval(r_norm, s_norm);
      if (v > req) req = v;
    }
    return req;
  }

  /// True iff `overlap` satisfies every conjunct.
  bool Test(double overlap, double r_norm, double s_norm) const {
    return overlap >= RequiredOverlap(r_norm, s_norm) - kEps;
  }

  /// A lower bound on RequiredOverlap(r_norm, *) valid for every possible
  /// S-group: conjuncts' S terms are dropped when their coefficient is
  /// positive (norms are nonnegative) and the conjunct is skipped when
  /// negative. This is the `alpha` fed to the R-side prefix filter
  /// (beta_r = wt(set_r) - RSideRequired(norm_r), Lemma 1 / §4.2).
  double RSideRequired(double r_norm) const {
    return OneSideRequired(r_norm, /*r_side=*/true);
  }
  /// Symmetric bound for the S side.
  double SSideRequired(double s_norm) const {
    return OneSideRequired(s_norm, /*r_side=*/false);
  }

  const std::vector<ThresholdExpr>& exprs() const { return exprs_; }

  std::string ToString() const;

 private:
  // Tolerance for floating-point weight accumulation order differences.
  static constexpr double kEps = 1e-9;

  double OneSideRequired(double own_norm, bool r_side) const {
    double req = 0.0;
    for (const ThresholdExpr& e : exprs_) {
      double other_coeff = r_side ? e.s_norm_coeff : e.r_norm_coeff;
      if (other_coeff < 0.0) continue;  // cannot bound without the other norm
      double own_coeff = r_side ? e.r_norm_coeff : e.s_norm_coeff;
      double v = e.constant + own_coeff * own_norm;  // other norm >= 0 dropped
      if (v > req) req = v;
    }
    return req;
  }

  std::vector<ThresholdExpr> exprs_;
};

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_PREDICATE_H_
