#include "core/set_store.h"

#include "common/string_util.h"

namespace ssjoin::core {

Status SetStore::CheckCapacity(size_t groups, size_t elements) {
  constexpr size_t kMax = UINT32_MAX;
  if (groups > kMax) {
    return Status::Invalid(StringPrintf(
        "SetStore: %zu groups exceed the uint32 CSR group capacity", groups));
  }
  if (elements > kMax) {
    return Status::Invalid(StringPrintf(
        "SetStore: %zu total elements exceed the uint32 CSR offset capacity",
        elements));
  }
  return Status::OK();
}

Result<SetStore> SetStore::FromParts(std::vector<uint32_t> offsets,
                                     std::vector<text::TokenId> token_ids,
                                     std::vector<double> weights) {
  if (offsets.empty()) {
    return Status::Invalid("SetStore: offsets array must have >= 1 entry");
  }
  if (offsets.front() != 0) {
    return Status::Invalid("SetStore: offsets must start at 0");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Invalid(StringPrintf(
          "SetStore: offsets not monotone at group %zu (%u < %u)", i - 1,
          offsets[i], offsets[i - 1]));
    }
  }
  if (offsets.back() != token_ids.size()) {
    return Status::Invalid(StringPrintf(
        "SetStore: offsets end at %u but token_ids has %zu entries",
        offsets.back(), token_ids.size()));
  }
  if (!weights.empty() && weights.size() != token_ids.size()) {
    return Status::Invalid(StringPrintf(
        "SetStore: weights column has %zu entries for %zu elements",
        weights.size(), token_ids.size()));
  }
  SetStore store;
  store.offsets_ = std::move(offsets);
  store.token_ids_ = std::move(token_ids);
  store.weights_ = std::move(weights);
  return store;
}

}  // namespace ssjoin::core
