#include "core/prefix_filter.h"

#include <algorithm>

namespace ssjoin::core {

namespace {

// Tolerance shielding the prune decision from floating-point accumulation
// noise; pruning must only happen when the group provably cannot match.
constexpr double kPruneEps = 1e-6;

}  // namespace

std::vector<text::TokenId> ComputePrefix(const std::vector<text::TokenId>& set,
                                         const WeightVector& weights,
                                         const ElementOrder& order, double beta) {
  if (beta < -kPruneEps) return {};  // group can never satisfy the predicate
  std::vector<text::TokenId> by_rank = set;
  std::sort(by_rank.begin(), by_rank.end(), [&](text::TokenId a, text::TokenId b) {
    return order.Rank(a) < order.Rank(b);
  });
  double cum = 0.0;
  for (size_t i = 0; i < by_rank.size(); ++i) {
    cum += weights[by_rank[i]];
    if (cum > beta + kPruneEps) {
      by_rank.resize(i + 1);
      return by_rank;
    }
  }
  return by_rank;  // whole set: weights never exceeded beta
}

PrefixFilteredRelation PrefixFilterRelation(const SetsRelation& rel,
                                            const WeightVector& weights,
                                            const ElementOrder& order,
                                            const OverlapPredicate& pred,
                                            JoinSide side) {
  PrefixFilteredRelation out;
  out.prefixes.resize(rel.num_groups());
  for (size_t g = 0; g < rel.num_groups(); ++g) {
    double required = side == JoinSide::kR ? pred.RSideRequired(rel.norms[g])
                                           : pred.SSideRequired(rel.norms[g]);
    double beta = rel.set_weights[g] - required;
    out.prefixes[g] = ComputePrefix(rel.sets[g], weights, order, beta);
  }
  return out;
}

}  // namespace ssjoin::core
