#include "core/prefix_filter.h"

#include <algorithm>

namespace ssjoin::core {

namespace {

// Tolerance shielding the prune decision from floating-point accumulation
// noise; pruning must only happen when the group provably cannot match.
constexpr double kPruneEps = 1e-6;

}  // namespace

void TrimSortedToPrefix(const WeightVector& weights, double beta,
                        std::vector<text::TokenId>* set) {
  if (beta < -kPruneEps) {  // group can never satisfy the predicate
    set->clear();
    return;
  }
  double cum = 0.0;
  for (size_t i = 0; i < set->size(); ++i) {
    cum += weights[(*set)[i]];
    if (cum > beta + kPruneEps) {
      set->resize(i + 1);
      return;
    }
  }
  // whole set: weights never exceeded beta
}

void ComputePrefixInto(std::span<const text::TokenId> set,
                       const WeightVector& weights, const ElementOrder& order,
                       double beta, std::vector<text::TokenId>* out) {
  out->clear();
  if (beta < -kPruneEps) return;
  out->assign(set.begin(), set.end());
  std::sort(out->begin(), out->end(), [&](text::TokenId a, text::TokenId b) {
    return order.Rank(a) < order.Rank(b);
  });
  TrimSortedToPrefix(weights, beta, out);
}

std::vector<text::TokenId> ComputePrefix(std::span<const text::TokenId> set,
                                         const WeightVector& weights,
                                         const ElementOrder& order, double beta) {
  std::vector<text::TokenId> out;
  ComputePrefixInto(set, weights, order, beta, &out);
  return out;
}

PrefixFilteredRelation PrefixFilterRelation(const SetsRelation& rel,
                                            const WeightVector& weights,
                                            const ElementOrder& order,
                                            const OverlapPredicate& pred,
                                            JoinSide side) {
  PrefixFilteredRelation out;
  out.prefixes.Reserve(rel.num_groups(), rel.total_elements());
  std::vector<text::TokenId> scratch;
  for (GroupId g = 0; g < rel.num_groups(); ++g) {
    double required = side == JoinSide::kR ? pred.RSideRequired(rel.norms[g])
                                           : pred.SSideRequired(rel.norms[g]);
    double beta = rel.set_weights[g] - required;
    ComputePrefixInto(rel.set(g), weights, order, beta, &scratch);
    out.prefixes.AppendSet(scratch);
  }
  return out;
}

}  // namespace ssjoin::core
