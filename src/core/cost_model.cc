#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/string_util.h"
#include "core/prefix_filter.h"

namespace ssjoin::core {

namespace {

// Relative cost of keeping one equi-join row through the sort-based
// group-by of the basic plan (per comparison), and of touching one element
// during candidate verification in the prefix plan. Calibrated once against
// the bench_ablation_optimizer measurements; the decision is robust to
// small changes because the two plans' row counts differ by orders of
// magnitude away from the crossover.
constexpr double kSortFactor = 0.35;
constexpr double kVerifyFactor = 0.6;

size_t NumElements(const SetsRelation& r, const SetsRelation& s) {
  size_t max_id = 0;
  for (text::TokenId e : r.store.token_ids()) {
    max_id = std::max<size_t>(max_id, e);
  }
  for (text::TokenId e : s.store.token_ids()) {
    max_id = std::max<size_t>(max_id, e);
  }
  return max_id + 1;
}

std::vector<uint32_t> ElementFrequencies(const SetStore& store,
                                         size_t num_elements) {
  std::vector<uint32_t> freq(num_elements, 0);
  for (text::TokenId e : store.token_ids()) ++freq[e];
  return freq;
}

size_t JoinRows(const std::vector<uint32_t>& fr, const std::vector<uint32_t>& fs) {
  size_t rows = 0;
  for (size_t e = 0; e < fr.size(); ++e) {
    rows += static_cast<size_t>(fr[e]) * fs[e];
  }
  return rows;
}

}  // namespace

CostEstimate EstimateCosts(const SetsRelation& r, const SetsRelation& s,
                           const OverlapPredicate& pred, const SSJoinContext& ctx) {
  CostEstimate est;
  size_t num_elements = NumElements(r, s);

  std::vector<uint32_t> fr = ElementFrequencies(r.store, num_elements);
  std::vector<uint32_t> fs = ElementFrequencies(s.store, num_elements);
  est.basic_join_rows = JoinRows(fr, fs);

  PrefixFilteredRelation r_pref =
      PrefixFilterRelation(r, *ctx.weights, *ctx.order, pred, JoinSide::kR);
  PrefixFilteredRelation s_pref =
      PrefixFilterRelation(s, *ctx.weights, *ctx.order, pred, JoinSide::kS);
  std::vector<uint32_t> pr = ElementFrequencies(r_pref.prefixes, num_elements);
  std::vector<uint32_t> ps = ElementFrequencies(s_pref.prefixes, num_elements);
  est.prefix_join_rows = JoinRows(pr, ps);

  double total_elements =
      static_cast<double>(r.total_elements() + s.total_elements());
  double avg_set = r.num_groups() + s.num_groups() > 0
                       ? total_elements / static_cast<double>(r.num_groups() +
                                                              s.num_groups())
                       : 0.0;
  // Prefix-join rows over-count candidates (a candidate is found once per
  // shared prefix element), so they upper-bound the verification fan-in.
  est.prefix_verify_cost =
      static_cast<double>(est.prefix_join_rows) * kVerifyFactor * avg_set;

  double basic_rows = static_cast<double>(est.basic_join_rows);
  est.basic_cost =
      basic_rows * (1.0 + kSortFactor * std::log2(std::max(2.0, basic_rows)));
  est.prefix_cost = total_elements  // computing the prefixes + index build
                    + static_cast<double>(est.prefix_join_rows) +
                    est.prefix_verify_cost;
  // When the prefixes barely shrink the join, the prefix plan re-does the
  // basic plan's work plus the prefix computation and per-candidate merges:
  // it can never win. Short-circuit to basic regardless of the constants.
  if (est.prefix_join_rows * 10 >= est.basic_join_rows * 9) {
    est.chosen = SSJoinAlgorithm::kBasic;
  } else {
    est.chosen = est.basic_cost <= est.prefix_cost
                     ? SSJoinAlgorithm::kBasic
                     : SSJoinAlgorithm::kPrefixFilterInline;
  }
  return est;
}

SSJoinAlgorithm ChooseAlgorithm(const SetsRelation& r, const SetsRelation& s,
                                const OverlapPredicate& pred,
                                const SSJoinContext& ctx) {
  return EstimateCosts(r, s, pred, ctx).chosen;
}

HybridRoutingDecision ChooseHybridTier(const SetsRelation& r,
                                       const SetsRelation& s,
                                       const OverlapPredicate& pred,
                                       const SSJoinContext& ctx) {
  (void)pred;
  (void)ctx;
  HybridRoutingDecision decision;
  size_t num_groups = r.num_groups() + s.num_groups();
  decision.frequency_threshold =
      std::max(kHybridMinFrequency, (num_groups + 19) / 20);  // 5% of groups

  size_t num_elements = NumElements(r, s);
  std::vector<uint32_t> fr = ElementFrequencies(r.store, num_elements);
  std::vector<uint32_t> fs = ElementFrequencies(s.store, num_elements);
  size_t frequent_occurrences = 0;
  size_t total_occurrences = 0;
  for (size_t e = 0; e < num_elements; ++e) {
    size_t f = static_cast<size_t>(fr[e]) + fs[e];
    total_occurrences += f;
    if (f >= decision.frequency_threshold) frequent_occurrences += f;
  }
  decision.total_occurrences = total_occurrences;
  decision.frequent_token_share =
      total_occurrences > 0 ? static_cast<double>(frequent_occurrences) /
                                  static_cast<double>(total_occurrences)
                            : 0.0;
  decision.chosen = decision.frequent_token_share >= kHybridShareCutoff
                        ? SSJoinAlgorithm::kApprox
                        : SSJoinAlgorithm::kPrefixFilterInline;
  return decision;
}

std::string HybridRoutingDecision::ToString() const {
  return StringPrintf(
      "HybridRouting{freq_threshold=%zu frequent_share=%.3f occurrences=%zu "
      "chosen=%s}",
      frequency_threshold, frequent_token_share, total_occurrences,
      SSJoinAlgorithmName(chosen));
}

std::string CostEstimate::ToString() const {
  return StringPrintf(
      "CostEstimate{basic_rows=%zu prefix_rows=%zu basic_cost=%.3g "
      "prefix_cost=%.3g chosen=%s}",
      basic_join_rows, prefix_join_rows, basic_cost, prefix_cost,
      SSJoinAlgorithmName(chosen));
}

}  // namespace ssjoin::core
