#include "core/predicate.h"

#include "common/string_util.h"

namespace ssjoin::core {

std::string OverlapPredicate::ToString() const {
  if (exprs_.empty()) return "Overlap >= 0";
  std::string out;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += " AND ";
    const ThresholdExpr& e = exprs_[i];
    std::string rhs;
    if (e.constant != 0.0 || (e.r_norm_coeff == 0.0 && e.s_norm_coeff == 0.0)) {
      rhs += StringPrintf("%g", e.constant);
    }
    if (e.r_norm_coeff != 0.0) {
      if (!rhs.empty()) rhs += " + ";
      rhs += StringPrintf("%g*R.norm", e.r_norm_coeff);
    }
    if (e.s_norm_coeff != 0.0) {
      if (!rhs.empty()) rhs += " + ";
      rhs += StringPrintf("%g*S.norm", e.s_norm_coeff);
    }
    out += "Overlap >= " + rhs;
  }
  return out;
}

}  // namespace ssjoin::core
