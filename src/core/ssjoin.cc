#include "core/ssjoin.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "core/inverted_index.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"

namespace ssjoin::core {

Status ValidateSSJoinInputs(const SetsRelation& r, const SetsRelation& s,
                            const SSJoinContext& ctx, bool needs_order) {
  if (ctx.weights == nullptr) {
    return Status::Invalid("SSJoinContext.weights must be set");
  }
  if (needs_order && ctx.order == nullptr) {
    return Status::Invalid("this SSJoin algorithm requires an element order");
  }
  if (r.norms.size() != r.num_groups() || s.norms.size() != s.num_groups() ||
      r.set_weights.size() != r.num_groups() ||
      s.set_weights.size() != s.num_groups()) {
    return Status::Invalid("SetsRelation columns have inconsistent lengths");
  }
  if (r.total_elements() + s.total_elements() > 0) {
    size_t max_id = MaxElementId(r, s);
    if (max_id >= ctx.weights->size()) {
      return Status::Invalid("weights vector does not cover all element ids");
    }
    if (needs_order && max_id >= ctx.order->num_elements()) {
      return Status::Invalid("element order does not cover all element ids");
    }
  }
  return Status::OK();
}

namespace {

/// Candidate generation shared by the two prefix-filter variants:
/// equi-join of the prefix relations, deduplicated per R-group.
/// Appends candidate S-group lists per R-group via `emit(r, s_groups)`.
template <typename EmitFn>
void GeneratePrefixCandidates(const PrefixFilteredRelation& r_pref,
                              const InvertedIndex& s_index, size_t num_s_groups,
                              SSJoinStats* stats, const EmitFn& emit) {
  // Epoch-marked dense seen array: O(1) dedup per probe.
  std::vector<uint32_t> seen_epoch(num_s_groups, 0);
  uint32_t epoch = 0;
  std::vector<GroupId> cands;
  for (GroupId rg = 0; rg < r_pref.prefixes.num_groups(); ++rg) {
    SetView prefix = r_pref.prefixes.view(rg);
    if (prefix.empty()) continue;
    ++epoch;
    cands.clear();
    for (text::TokenId e : prefix) {
      auto [begin, end] = s_index.Lookup(e);
      stats->equijoin_rows += static_cast<size_t>(end - begin);
      kernels::ProbePostings({begin, end}, epoch, seen_epoch.data(), &cands);
    }
    if (!cands.empty()) emit(rg, cands);
  }
}

class NaiveSSJoin final : public SSJoinExecutor {
 public:
  std::string name() const override { return "naive"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/false));
    const WeightVector& w = *ctx.weights;
    std::vector<SSJoinPair> out;
    Timer timer;
    for (GroupId rg = 0; rg < r.num_groups(); ++rg) {
      for (GroupId sg = 0; sg < s.num_groups(); ++sg) {
        ++stats->candidate_pairs;
        double overlap = kernels::IntersectWeighted(r.set(rg), s.set(sg), w.data());
        if (overlap > 0.0 && pred.Test(overlap, r.norms[rg], s.norms[sg])) {
          out.push_back({rg, sg, overlap});
        }
      }
    }
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", timer.ElapsedMillis());
    return out;
  }
};

class BasicSSJoin final : public SSJoinExecutor {
 public:
  std::string name() const override { return "basic"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/false));
    const WeightVector& w = *ctx.weights;
    Timer timer;

    // Equi-join R.B = S.B, materialized as (r, s, weight) rows. The inverted
    // index over S is the hash table of a hash join with R as probe side.
    size_t num_elements = MaxElementId(r, s) + 1;
    InvertedIndex s_index(s.store, num_elements);
    struct JoinRow {
      uint64_t key;  // (r << 32) | s
      double weight;
    };
    // Size the join output exactly (sum of per-element frequency products),
    // as a hash join's build-side statistics would.
    size_t total_rows = 0;
    for (text::TokenId e : r.store.token_ids()) {
      auto [begin, end] = s_index.Lookup(e);
      total_rows += static_cast<size_t>(end - begin);
    }
    std::vector<JoinRow> rows;
    rows.reserve(total_rows);
    for (GroupId rg = 0; rg < r.num_groups(); ++rg) {
      for (text::TokenId e : r.set(rg)) {
        auto [begin, end] = s_index.Lookup(e);
        double we = w[e];
        for (const GroupId* p = begin; p != end; ++p) {
          rows.push_back({(static_cast<uint64_t>(rg) << 32) | *p, we});
        }
      }
    }
    stats->equijoin_rows = rows.size();

    // Group by (R.A, S.A): sort on the packed key, then aggregate runs and
    // apply the HAVING clause. The sort is stable so equal-key rows keep
    // generation (element) order — per-pair weight sums then come out
    // bit-identical however the row stream is partitioned, which is what
    // lets the parallel executor (exec/parallel_ssjoin.cc) match this plan
    // exactly.
    std::stable_sort(rows.begin(), rows.end(),
                     [](const JoinRow& a, const JoinRow& b) { return a.key < b.key; });
    std::vector<SSJoinPair> out;
    size_t i = 0;
    while (i < rows.size()) {
      uint64_t key = rows[i].key;
      double overlap = 0.0;
      while (i < rows.size() && rows[i].key == key) {
        overlap += rows[i].weight;
        ++i;
      }
      ++stats->candidate_pairs;
      GroupId rg = static_cast<GroupId>(key >> 32);
      GroupId sg = static_cast<GroupId>(key & 0xffffffffu);
      if (pred.Test(overlap, r.norms[rg], s.norms[sg])) {
        out.push_back({rg, sg, overlap});
      }
    }
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", timer.ElapsedMillis());
    return out;
  }
};

class InvertedIndexSSJoin final : public SSJoinExecutor {
 public:
  std::string name() const override { return "inverted-index"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/false));
    const WeightVector& w = *ctx.weights;
    Timer timer;
    size_t num_elements = MaxElementId(r, s) + 1;
    InvertedIndex s_index(s.store, num_elements);

    // Score accumulation: stream R groups, accumulate per-S overlap in a
    // dense epoch-marked accumulator (the OptMerge-style plan of [13]).
    std::vector<double> acc(s.num_groups(), 0.0);
    std::vector<uint32_t> seen_epoch(s.num_groups(), 0);
    std::vector<GroupId> touched;
    uint32_t epoch = 0;
    std::vector<SSJoinPair> out;
    for (GroupId rg = 0; rg < r.num_groups(); ++rg) {
      ++epoch;
      touched.clear();
      for (text::TokenId e : r.set(rg)) {
        auto [begin, end] = s_index.Lookup(e);
        stats->equijoin_rows += static_cast<size_t>(end - begin);
        kernels::AccumulatePostings({begin, end}, w[e], epoch,
                                    seen_epoch.data(), acc.data(), &touched);
      }
      stats->candidate_pairs += touched.size();
      for (GroupId sg : touched) {
        if (pred.Test(acc[sg], r.norms[rg], s.norms[sg])) {
          out.push_back({rg, sg, acc[sg]});
        }
      }
    }
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", timer.ElapsedMillis());
    return out;
  }
};

class PrefixFilterSSJoin final : public SSJoinExecutor {
 public:
  std::string name() const override { return "prefix-filter"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/true));
    const WeightVector& w = *ctx.weights;

    // Phase 1: prefix-filter both relations (Figure 8, bottom operators).
    Timer prefix_timer;
    PrefixFilteredRelation r_pref =
        PrefixFilterRelation(r, w, *ctx.order, pred, JoinSide::kR);
    PrefixFilteredRelation s_pref =
        PrefixFilterRelation(s, w, *ctx.order, pred, JoinSide::kS);
    RecordPrefixStats(r, s, r_pref, s_pref, stats);
    size_t num_elements = MaxElementId(r, s) + 1;
    InvertedIndex s_index(s_pref.prefixes, num_elements);
    stats->phases.Add("Prefix-filter", prefix_timer.ElapsedMillis());

    // Phase 2: equi-join the prefixes to produce candidate <R.A, S.A> pairs,
    // then re-join the candidates with the *base* relations and group by the
    // pair to compute the overlap (the two upper joins + group-by of
    // Figure 8). The re-join is materialized as (candidate, weight) rows —
    // this materialization is exactly the cost the inline variant avoids.
    Timer join_timer;
    struct Candidate {
      GroupId r;
      GroupId s;
    };
    std::vector<Candidate> candidates;
    GeneratePrefixCandidates(r_pref, s_index, s.num_groups(), stats,
                             [&](GroupId rg, const std::vector<GroupId>& ss) {
                               for (GroupId sg : ss) candidates.push_back({rg, sg});
                             });
    stats->candidate_pairs = candidates.size();

    struct VerifyRow {
      uint32_t candidate;
      double weight;
    };
    std::vector<VerifyRow> rows;
    std::vector<text::TokenId> matched;
    for (uint32_t c = 0; c < candidates.size(); ++c) {
      SetView rset = r.set(candidates[c].r);
      SetView sset = s.set(candidates[c].s);
      matched.resize(std::min(rset.size(), sset.size()));
      size_t n = kernels::IntersectTokens(rset, sset, matched.data());
      for (size_t k = 0; k < n; ++k) rows.push_back({c, w[matched[k]]});
    }
    // Group by candidate (rows are clustered by construction) + HAVING.
    std::vector<SSJoinPair> out;
    size_t i = 0;
    while (i < rows.size()) {
      uint32_t c = rows[i].candidate;
      double overlap = 0.0;
      while (i < rows.size() && rows[i].candidate == c) {
        overlap += rows[i].weight;
        ++i;
      }
      GroupId rg = candidates[c].r;
      GroupId sg = candidates[c].s;
      if (pred.Test(overlap, r.norms[rg], s.norms[sg])) {
        out.push_back({rg, sg, overlap});
      }
    }
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", join_timer.ElapsedMillis());
    return out;
  }

 private:
  static void RecordPrefixStats(const SetsRelation& r, const SetsRelation& s,
                                const PrefixFilteredRelation& r_pref,
                                const PrefixFilteredRelation& s_pref,
                                SSJoinStats* stats) {
    stats->r_prefix_elements = r_pref.total_prefix_elements();
    stats->s_prefix_elements = s_pref.total_prefix_elements();
    for (GroupId g = 0; g < r.num_groups(); ++g) {
      if (r_pref.prefixes.elements(g).empty() && !r.set(g).empty()) {
        ++stats->pruned_groups_r;
      }
    }
    for (GroupId g = 0; g < s.num_groups(); ++g) {
      if (s_pref.prefixes.elements(g).empty() && !s.set(g).empty()) {
        ++stats->pruned_groups_s;
      }
    }
  }
};

class InlinePrefixFilterSSJoin final : public SSJoinExecutor {
 public:
  std::string name() const override { return "prefix-filter-inline"; }

  Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                          const SetsRelation& s,
                                          const OverlapPredicate& pred,
                                          const SSJoinContext& ctx,
                                          SSJoinStats* stats) const override {
    SSJOIN_RETURN_NOT_OK(ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/true));
    const WeightVector& w = *ctx.weights;

    Timer prefix_timer;
    PrefixFilteredRelation r_pref =
        PrefixFilterRelation(r, w, *ctx.order, pred, JoinSide::kR);
    PrefixFilteredRelation s_pref =
        PrefixFilterRelation(s, w, *ctx.order, pred, JoinSide::kS);
    stats->r_prefix_elements = r_pref.total_prefix_elements();
    stats->s_prefix_elements = s_pref.total_prefix_elements();
    size_t num_elements = MaxElementId(r, s) + 1;
    InvertedIndex s_index(s_pref.prefixes, num_elements);
    stats->phases.Add("Prefix-filter", prefix_timer.ElapsedMillis());

    // Candidates carry their groups inline (Figure 9): the overlap of each
    // candidate pair is computed by a direct merge of the two stored sets
    // (the overlap "UDF"), with no join back to the base relations.
    Timer join_timer;
    std::vector<SSJoinPair> out;
    GeneratePrefixCandidates(
        r_pref, s_index, s.num_groups(), stats,
        [&](GroupId rg, const std::vector<GroupId>& ss) {
          stats->candidate_pairs += ss.size();
          for (GroupId sg : ss) {
            double overlap =
                kernels::IntersectWeighted(r.set(rg), s.set(sg), w.data());
            if (overlap > 0.0 && pred.Test(overlap, r.norms[rg], s.norms[sg])) {
              out.push_back({rg, sg, overlap});
            }
          }
        });
    stats->result_pairs = out.size();
    stats->phases.Add("SSJoin", join_timer.ElapsedMillis());
    return out;
  }
};

}  // namespace

void SSJoinStats::Merge(const SSJoinStats& other) {
  equijoin_rows += other.equijoin_rows;
  candidate_pairs += other.candidate_pairs;
  result_pairs += other.result_pairs;
  r_prefix_elements += other.r_prefix_elements;
  s_prefix_elements += other.s_prefix_elements;
  pruned_groups_r += other.pruned_groups_r;
  pruned_groups_s += other.pruned_groups_s;
  phases.Merge(other.phases);
}

const char* SSJoinAlgorithmName(SSJoinAlgorithm algorithm) {
  switch (algorithm) {
    case SSJoinAlgorithm::kNaive:
      return "naive";
    case SSJoinAlgorithm::kBasic:
      return "basic";
    case SSJoinAlgorithm::kInvertedIndex:
      return "inverted-index";
    case SSJoinAlgorithm::kPrefixFilter:
      return "prefix-filter";
    case SSJoinAlgorithm::kPrefixFilterInline:
      return "prefix-filter-inline";
    case SSJoinAlgorithm::kApprox:
      return "approx";
    case SSJoinAlgorithm::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

std::unique_ptr<SSJoinExecutor> MakeExecutor(SSJoinAlgorithm algorithm) {
  switch (algorithm) {
    case SSJoinAlgorithm::kNaive:
      return std::make_unique<NaiveSSJoin>();
    case SSJoinAlgorithm::kBasic:
      return std::make_unique<BasicSSJoin>();
    case SSJoinAlgorithm::kInvertedIndex:
      return std::make_unique<InvertedIndexSSJoin>();
    case SSJoinAlgorithm::kPrefixFilter:
      return std::make_unique<PrefixFilterSSJoin>();
    case SSJoinAlgorithm::kPrefixFilterInline:
      return std::make_unique<InlinePrefixFilterSSJoin>();
    case SSJoinAlgorithm::kApprox:
    case SSJoinAlgorithm::kHybrid:
      // Implemented in src/approx (needs the parallel runtime, which core
      // cannot link). approx::ExecuteSSJoin intercepts these before dispatch
      // ever reaches this factory.
      return nullptr;
  }
  return nullptr;
}

Result<std::vector<SSJoinPair>> ExecuteSSJoin(SSJoinAlgorithm algorithm,
                                              const SetsRelation& r,
                                              const SetsRelation& s,
                                              const OverlapPredicate& pred,
                                              const SSJoinContext& ctx,
                                              SSJoinStats* stats) {
  std::unique_ptr<SSJoinExecutor> executor = MakeExecutor(algorithm);
  if (executor == nullptr) {
    return Status::Invalid(std::string("SSJoin algorithm '") +
                           SSJoinAlgorithmName(algorithm) +
                           "' is not available through the core dispatcher "
                           "(use approx::ExecuteSSJoin)");
  }
  SSJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Result<std::vector<SSJoinPair>> result = executor->Execute(r, s, pred, ctx, stats);
  if (result.ok()) PublishSSJoinStats(*stats);
  return result;
}

namespace {

/// "Prefix-filter" -> "prefix_filter": phase names become metric-name
/// segments ([a-z0-9_]).
std::string PhaseMetricSegment(const std::string& phase) {
  std::string out;
  out.reserve(phase.size());
  for (char c : phase) {
    if (c == '-' || c == ' ') {
      out.push_back('_');
    } else if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void RegisterCoreMetrics() {
  obs::Registry& reg = obs::Registry::Global();
  for (const char* name :
       {"core.joins", "core.equijoin_rows", "core.candidate_pairs",
        "core.result_pairs", "core.prefix_elements_r", "core.prefix_elements_s",
        "core.pruned_groups_r", "core.pruned_groups_s",
        "core.phase.prefix_filter.us", "core.phase.prefix_filter.count",
        "core.phase.ssjoin.us", "core.phase.ssjoin.count"}) {
    reg.GetCounter(name);
  }
}

void PublishSSJoinStats(const SSJoinStats& stats) {
  obs::Registry& reg = obs::Registry::Global();
  reg.GetCounter("core.joins")->Add(1);
  reg.GetCounter("core.equijoin_rows")->Add(stats.equijoin_rows);
  reg.GetCounter("core.candidate_pairs")->Add(stats.candidate_pairs);
  reg.GetCounter("core.result_pairs")->Add(stats.result_pairs);
  reg.GetCounter("core.prefix_elements_r")->Add(stats.r_prefix_elements);
  reg.GetCounter("core.prefix_elements_s")->Add(stats.s_prefix_elements);
  reg.GetCounter("core.pruned_groups_r")->Add(stats.pruned_groups_r);
  reg.GetCounter("core.pruned_groups_s")->Add(stats.pruned_groups_s);
  obs::SpanSet spans;
  for (const auto& [phase, millis] : stats.phases.phases()) {
    spans.Add(PhaseMetricSegment(phase),
              static_cast<uint64_t>(millis * 1000.0));
  }
  spans.PublishTo(&reg, "core.phase.");
}

void SortPairs(std::vector<SSJoinPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(), [](const SSJoinPair& a, const SSJoinPair& b) {
    if (a.r != b.r) return a.r < b.r;
    return a.s < b.s;
  });
}

}  // namespace ssjoin::core
