#ifndef SSJOIN_CORE_ORDER_H_
#define SSJOIN_CORE_ORDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/sets.h"

namespace ssjoin::core {

/// \brief A fixed total ordering O of the element universe (§4.2/§4.3.2).
///
/// `rank[e]` is the position of element `e` under O; prefixes are taken in
/// increasing rank. The ordering choice does not affect correctness (Lemma 1
/// holds for any O) but strongly affects how selective prefixes are — the
/// ablation bench `bench_ablation_ordering` measures this.
class ElementOrder {
 public:
  /// An empty order (no elements); assign a factory result before use.
  ElementOrder() = default;

  /// Elements ordered by decreasing weight (rare/high-IDF elements first) —
  /// the paper's choice: frequent elements are filtered out of prefixes.
  /// Ties broken by element id for determinism.
  static ElementOrder ByDecreasingWeight(const WeightVector& weights);

  /// Like ByDecreasingWeight, but ties are broken by a caller-supplied key
  /// (then by id). With keys that are a pure function of the element's
  /// *content* — e.g. the dictionary's (token, ordinal) hash — the order no
  /// longer depends on element-id numbering, so two indexes over the same
  /// logical records built in different insertion orders agree on every
  /// prefix. `tie_keys` must have one entry per element.
  static ElementOrder ByDecreasingWeightTieKeyed(
      const WeightVector& weights, std::span<const uint64_t> tie_keys);

  /// Elements ordered by increasing weight (frequent first) — the
  /// pessimal-ish order, for the ablation.
  static ElementOrder ByIncreasingWeight(const WeightVector& weights);

  /// Elements ordered by increasing document frequency (rarest first) — the
  /// frequency formulation of §4.3.2; equals ByDecreasingWeight under IDF.
  static ElementOrder ByIncreasingFrequency(const text::TokenDictionary& dict);

  /// Element id order (arbitrary but deterministic baseline).
  static ElementOrder ById(size_t num_elements);

  /// A random permutation (ablation baseline).
  static ElementOrder Random(size_t num_elements, uint64_t seed);

  /// Rebuilds an order from its serialized rank vector (snapshot format).
  /// `rank` must be a permutation of [0, rank.size()).
  static Result<ElementOrder> FromRanks(std::vector<uint32_t> rank);

  /// The full rank vector, indexed by element id (for serialization).
  const std::vector<uint32_t>& ranks() const { return rank_; }

  uint32_t Rank(text::TokenId id) const {
    SSJOIN_DCHECK(id < rank_.size());
    return rank_[id];
  }

  size_t num_elements() const { return rank_.size(); }

 private:
  explicit ElementOrder(std::vector<uint32_t> rank) : rank_(std::move(rank)) {}

  std::vector<uint32_t> rank_;
};

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_ORDER_H_
