#include "core/estimator.h"

#include <numeric>

#include "common/rng.h"

namespace ssjoin::core {

Result<SizeEstimate> EstimateResultSize(const SetsRelation& r,
                                        const SetsRelation& s,
                                        const OverlapPredicate& pred,
                                        const SSJoinContext& ctx,
                                        size_t sample_size, uint64_t seed) {
  if (sample_size == 0) return Status::Invalid("sample_size must be positive");
  SizeEstimate estimate;
  if (r.num_groups() == 0 || s.num_groups() == 0) return estimate;

  SetsRelation sample;
  const SetsRelation* input = &r;
  if (sample_size >= r.num_groups()) {
    estimate.sampled_groups = r.num_groups();
  } else {
    // Uniform sample without replacement: partial Fisher-Yates over ids.
    std::vector<GroupId> ids(r.num_groups());
    std::iota(ids.begin(), ids.end(), 0);
    Rng rng(seed);
    for (size_t i = 0; i < sample_size; ++i) {
      size_t j = i + rng.Uniform(ids.size() - i);
      std::swap(ids[i], ids[j]);
    }
    ids.resize(sample_size);
    sample.store.Reserve(sample_size, r.total_elements());
    for (GroupId g : ids) {
      sample.store.AppendSet(r.set(g));
      sample.norms.push_back(r.norms[g]);
      sample.set_weights.push_back(r.set_weights[g]);
    }
    estimate.sampled_groups = sample_size;
    input = &sample;
  }

  SSJoinStats stats;
  SSJOIN_ASSIGN_OR_RETURN(
      std::vector<SSJoinPair> pairs,
      ExecuteSSJoin(SSJoinAlgorithm::kPrefixFilterInline, *input, s, pred, ctx,
                    &stats));
  estimate.sample_pairs = pairs.size();
  double scale =
      static_cast<double>(r.num_groups()) / static_cast<double>(estimate.sampled_groups);
  estimate.estimated_pairs = static_cast<double>(pairs.size()) * scale;
  return estimate;
}

}  // namespace ssjoin::core
