#ifndef SSJOIN_CORE_SSJOIN_PLAN_H_
#define SSJOIN_CORE_SSJOIN_PLAN_H_

#include <string>

#include "core/cost_model.h"
#include "core/relational_ssjoin.h"
#include "engine/plan.h"

namespace ssjoin::core {

/// §7 of the paper: "In future, we intend to integrate the SSJoin operator
/// with the query optimizer in order to make cost-conscious choices among
/// the basic, prefix-filtered, and inline prefix-filtered implementations."
/// This header implements that integration for the engine's plan trees:
/// SSJoinNode is a *logical* operator whose physical implementation is
/// chosen when the plan runs, using the cost model over the actual inputs.

/// Physical strategy for an SSJoinNode.
enum class SSJoinStrategy {
  kBasic,         ///< always the Figure 7 plan
  kPrefixFilter,  ///< always the Figure 8 plan
  kCostBased,     ///< let core::EstimateCosts pick per input (§7)
};

const char* SSJoinStrategyName(SSJoinStrategy strategy);

/// \brief The inverse of ToNormalizedTable: reconstructs a SetsRelation
/// (plus the element weights and ordering) from a normalized table with
/// columns (a, b, weight, norm, rank). Group ids must be dense 0..n-1;
/// weights/ranks must be consistent per element.
struct DecodedRelation {
  SetsRelation rel;
  WeightVector weights;
  ElementOrder order;
  /// Raw ranks recovered from the rank column (by element id), used to
  /// merge orderings when the two join sides cover different id ranges.
  std::vector<uint32_t> ranks;
};
Result<DecodedRelation> TableToSetsRelation(const engine::Table& table);

/// \brief Logical SSJoin plan node over two subplans that produce normalized
/// tables (schema of ToNormalizedTable). Output schema:
/// (r_a: int64, s_a: int64, overlap: float64).
///
/// With kCostBased, Execute() materializes the inputs, runs the cost model
/// on their statistics, and dispatches to the basic (Figure 7) or
/// prefix-filtered (Figure 8) relational plan.
engine::PlanPtr SSJoinNode(engine::PlanPtr r, engine::PlanPtr s,
                           OverlapPredicate pred,
                           SSJoinStrategy strategy = SSJoinStrategy::kCostBased);

/// \brief EXPLAIN helper: reports which physical plan the cost model picks
/// for these concrete inputs, with the underlying estimates.
Result<std::string> ExplainSSJoin(const engine::Table& r, const engine::Table& s,
                                  const OverlapPredicate& pred);

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_SSJOIN_PLAN_H_
