#ifndef SSJOIN_CORE_SSJOIN_H_
#define SSJOIN_CORE_SSJOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "core/order.h"
#include "core/predicate.h"
#include "core/prefix_filter.h"
#include "core/sets.h"
#include "exec/exec_context.h"

namespace ssjoin::core {

/// \brief One output pair of the SSJoin operator: group ids of the joined
/// distinct A-values plus their (weighted) overlap.
struct SSJoinPair {
  GroupId r;
  GroupId s;
  double overlap;

  bool operator==(const SSJoinPair& other) const {
    return r == other.r && s == other.s;
  }
};

/// \brief Execution statistics, mirroring the quantities §5 reports:
/// equi-join blowup, candidate counts, per-phase timings.
struct SSJoinStats {
  /// Rows produced by the equi-join on B (Basic) or by the prefix equi-join
  /// (prefix variants, before per-R dedup).
  size_t equijoin_rows = 0;
  /// Distinct <R.A, S.A> pairs whose overlap was computed/verified.
  size_t candidate_pairs = 0;
  /// Pairs in the final result.
  size_t result_pairs = 0;
  /// Elements surviving the prefix filter on each side.
  size_t r_prefix_elements = 0;
  size_t s_prefix_elements = 0;
  /// Groups pruned outright (required overlap exceeds total set weight).
  size_t pruned_groups_r = 0;
  size_t pruned_groups_s = 0;
  /// Phase timings ("Prefix-filter", "SSJoin"; callers add "Prep"/"Filter").
  PhaseTimer phases;

  /// Accumulates another stats record into this one: counters are summed and
  /// phase timings merged. Used by the parallel executors to combine
  /// per-morsel statistics; summing in a fixed (morsel) order keeps the
  /// merged record deterministic.
  void Merge(const SSJoinStats& other);
};

/// \brief Shared inputs of every executor: the element weights (fixed, per
/// Section 2) and the global element ordering used by prefix filters.
struct SSJoinContext {
  const WeightVector* weights = nullptr;
  const ElementOrder* order = nullptr;  // required by prefix variants only
  /// Optional parallel-execution knobs (src/exec). Null or 1 thread means
  /// serial execution; exec::ExecuteSSJoin dispatches on this.
  const exec::ExecContext* exec = nullptr;
};

/// \brief Physical implementation strategies for the SSJoin operator.
enum class SSJoinAlgorithm {
  /// Cross-product + overlap UDF; the strawman the paper's introduction
  /// dismisses. Quadratic — for tests and the bench_naive_udf bench only.
  kNaive,
  /// Figure 7: equi-join on B materialized, then group-by (R.A, S.A) with a
  /// HAVING clause on the summed weights.
  kBasic,
  /// Inverted-index score accumulation in the style of Sarawagi & Kirpal
  /// [13] (§6 related work); no prefix filter, no join materialization.
  kInvertedIndex,
  /// Figure 8: prefix-filter both sides, equi-join prefixes for candidates,
  /// re-join candidates with the base relations and group to verify.
  kPrefixFilter,
  /// Figure 9: prefix filter with inlined set representation — candidates
  /// are verified by a direct overlap "UDF" on the carried sets, avoiding
  /// the re-joins with the base relations.
  kPrefixFilterInline,
  /// MinHash-LSH approximate candidate tier (src/approx, CPSJoin-style):
  /// candidates from banded signatures tuned to a target recall, verified by
  /// the exact overlap path — precision 1.0, recall approximate. Only
  /// runnable through approx::ExecuteSSJoin; core::MakeExecutor returns null.
  kApprox,
  /// Planner mode: route frequent-token-heavy inputs to kApprox and the rest
  /// to kPrefixFilterInline (core::ChooseHybridTier). Resolved by the approx
  /// layer's dispatch, never a physical executor itself.
  kHybrid,
};

const char* SSJoinAlgorithmName(SSJoinAlgorithm algorithm);

/// \brief Abstract physical operator. Implementations are stateless;
/// everything flows through Execute.
///
/// Contract (Definition 1): returns every pair of groups <r, s> with
/// Overlap_B(r, s) >= max_i e_i(norm_r, norm_s) **and** a non-empty
/// intersection (the operator's standing positive-threshold assumption:
/// pairs sharing no element are never produced).
class SSJoinExecutor {
 public:
  virtual ~SSJoinExecutor() = default;

  virtual std::string name() const = 0;

  virtual Result<std::vector<SSJoinPair>> Execute(const SetsRelation& r,
                                                  const SetsRelation& s,
                                                  const OverlapPredicate& pred,
                                                  const SSJoinContext& ctx,
                                                  SSJoinStats* stats) const = 0;
};

/// Factory for a named algorithm.
std::unique_ptr<SSJoinExecutor> MakeExecutor(SSJoinAlgorithm algorithm);

/// Shared input validation for SSJoin executors (serial and parallel):
/// weights/order coverage and column-length consistency.
Status ValidateSSJoinInputs(const SetsRelation& r, const SetsRelation& s,
                            const SSJoinContext& ctx, bool needs_order);

/// One-shot convenience: builds the executor and runs it.
Result<std::vector<SSJoinPair>> ExecuteSSJoin(SSJoinAlgorithm algorithm,
                                              const SetsRelation& r,
                                              const SetsRelation& s,
                                              const OverlapPredicate& pred,
                                              const SSJoinContext& ctx,
                                              SSJoinStats* stats = nullptr);

/// Sorts pairs by (r, s) — canonical order for comparing implementations.
void SortPairs(std::vector<SSJoinPair>* pairs);

/// Pre-creates the core layer's obs::Registry entries (core.joins,
/// core.equijoin_rows, ...) so metric exports list the full name set even
/// before the first join runs.
void RegisterCoreMetrics();

/// Adds one finished join's statistics to the global obs registry: counters
/// under `core.*` and phase timings under `core.phase.<phase>.{us,count}`.
/// Called by core::ExecuteSSJoin and the exec layer's parallel dispatch; the
/// counter deltas are deterministic (SSJoinStats merges per-morsel records in
/// morsel order), phase timings are wall clock and are not.
void PublishSSJoinStats(const SSJoinStats& stats);

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_SSJOIN_H_
