#ifndef SSJOIN_CORE_RELATIONAL_SSJOIN_H_
#define SSJOIN_CORE_RELATIONAL_SSJOIN_H_

#include "core/order.h"
#include "core/predicate.h"
#include "core/sets.h"
#include "engine/operators.h"
#include "engine/table.h"

namespace ssjoin::core {

/// This header builds the paper's SSJoin plans *literally* out of the
/// relational engine's operators (hash equi-join, group-by + HAVING,
/// groupwise-apply), demonstrating the paper's central systems claim: SSJoin
/// needs nothing beyond standard relational operators (§4, Figures 7 and 8).
/// The columnar executors in ssjoin.h are the tuned physical counterparts;
/// tests assert both produce identical results.

/// \brief Converts a SetsRelation into the paper's First-Normal-Form
/// representation (Figure 1): one row per (group, element) with columns
///   a: int64      — the group (distinct A-value) id
///   b: int64      — the element (set member) id
///   weight: float64 — the element's weight
///   norm: float64 — the group's norm
///   rank: int64   — the element's position under the global ordering O
///                   (the paper's "order table" join, §4.3.3)
Result<engine::Table> ToNormalizedTable(const SetsRelation& rel,
                                        const WeightVector& weights,
                                        const ElementOrder& order);

/// \brief Figure 7: the basic SSJoin plan — equi-join on b, group by
/// (r.a, s.a), HAVING the summed weight satisfy `pred`.
/// Output schema: (r_a: int64, s_a: int64, overlap: float64).
Result<engine::Table> BasicSSJoinPlan(const engine::Table& r, const engine::Table& s,
                                      const OverlapPredicate& pred);

/// \brief Figure 8: the prefix-filtered SSJoin plan — prefix-filter both
/// inputs with the groupwise-processing operator, equi-join the prefixes for
/// candidate pairs, re-join candidates with the base relations, group and
/// apply the HAVING clause. Same output schema as BasicSSJoinPlan.
Result<engine::Table> PrefixFilterSSJoinPlan(const engine::Table& r,
                                             const engine::Table& s,
                                             const OverlapPredicate& pred);

/// \brief The prefix-filter as a groupwise-processing subquery (§4.3.3):
/// groups rows of a normalized table by `a` and keeps each group's shortest
/// rank-ordered prefix whose weights exceed wt(group) - required(norm).
/// `r_side` selects which side of `pred` supplies the required overlap.
Result<engine::Table> PrefixFilterPlan(const engine::Table& input,
                                       const OverlapPredicate& pred, bool r_side);

}  // namespace ssjoin::core

#endif  // SSJOIN_CORE_RELATIONAL_SSJOIN_H_
